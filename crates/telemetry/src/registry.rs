//! The integer-only metrics registry.
//!
//! All accumulation is `u64` arithmetic — consistent with the repository's
//! integer-cycle lint — and histogram buckets are powers of two, so the
//! registry never needs floating point. Derived ratios (hit rates,
//! utilization percentages) are computed by *reporting* layers from the raw
//! counters, never stored here.

use crate::catalog::{MetricDef, MetricId, MetricKind, CATALOG};

/// Number of histogram buckets: bucket `b` counts values in
/// `[2^(b-1), 2^b)`, bucket 0 counts zero, bucket 64 is the final
/// `>= 2^63` overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a value: 0 for 0, otherwise `b` such that the value is
/// in `[2^(b-1), 2^b)` — i.e. the bit length of the value.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Count in bucket `b` (zero for out-of-range `b`).
    pub fn bucket(&self, b: usize) -> u64 {
        self.buckets.get(b).copied().unwrap_or(0)
    }

    /// Inclusive upper bound of bucket `b` (the largest value that bucket
    /// can hold): 0 for the zero bucket, `2^b - 1` for interior buckets,
    /// `u64::MAX` for the overflow bucket.
    pub fn bucket_upper(b: usize) -> u64 {
        match b {
            0 => 0,
            1..=63 => (1u64 << b) - 1,
            _ => u64::MAX,
        }
    }

    /// Nearest-rank percentile query, in permille (`500` = p50, `990` =
    /// p99, `1000` = max). Returns `None` when the histogram is empty.
    ///
    /// The answer is the inclusive upper bound of the bucket holding the
    /// rank, clamped into `[min, max]` — so the result is *exact* whenever
    /// the rank lands in the first or last non-empty bucket (in particular
    /// for single-sample histograms and for p1000, which always returns
    /// the true maximum), and otherwise overstates by less than the
    /// bucket's width (a factor of two).
    pub fn percentile(&self, permille: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let permille = permille.min(1000);
        // Smallest 1-based rank covering the requested fraction.
        let product = u128::from(permille) * u128::from(self.count);
        let rank = (product.div_ceil(1000).max(1)) as u64;
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return Some(Self::bucket_upper(b).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// `(bucket index, count)` for every non-empty bucket, in order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }
}

/// One metric's stored state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Counter(u64),
    Gauge(u64),
    Histogram(Box<Log2Histogram>),
}

/// A flat, catalog-indexed metrics registry.
///
/// Construction allocates one slot per [`CATALOG`] entry; all operations
/// are array indexing. Writes through a mismatched kind (e.g.
/// [`observe`](Registry::observe) on a counter) are ignored rather than
/// panicking — the catalog's unit tests keep call sites honest.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    slots: Vec<Slot>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with every catalog metric at zero.
    pub fn new() -> Self {
        let slots = CATALOG
            .iter()
            .map(|def| match def.kind {
                MetricKind::Counter => Slot::Counter(0),
                MetricKind::Gauge => Slot::Gauge(0),
                MetricKind::Histogram => Slot::Histogram(Box::default()),
            })
            .collect();
        Registry { slots }
    }

    /// Add `delta` to a counter.
    pub fn add(&mut self, id: MetricId, delta: u64) {
        if let Some(Slot::Counter(v)) = self.slots.get_mut(id.index()) {
            *v = v.saturating_add(delta);
        }
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, id: MetricId) {
        self.add(id, 1);
    }

    /// Set a gauge.
    pub fn set(&mut self, id: MetricId, value: u64) {
        if let Some(Slot::Gauge(v)) = self.slots.get_mut(id.index()) {
            *v = value;
        }
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, id: MetricId, value: u64) {
        if let Some(Slot::Histogram(h)) = self.slots.get_mut(id.index()) {
            h.observe(value);
        }
    }

    /// Current value of a counter or gauge (zero for histograms).
    pub fn value(&self, id: MetricId) -> u64 {
        match self.slots.get(id.index()) {
            Some(Slot::Counter(v)) | Some(Slot::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram stored under `id`, if that metric is one.
    pub fn histogram(&self, id: MetricId) -> Option<&Log2Histogram> {
        match self.slots.get(id.index()) {
            Some(Slot::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Render the registry as JSON Lines: one self-describing JSON object
    /// per metric, scalars and histograms alike, all values integers.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (def, slot) in CATALOG.iter().zip(&self.slots) {
            out.push_str(&render_line(def, slot));
            out.push('\n');
        }
        out
    }

    /// Every `(definition, value)` pair for scalar metrics, in catalog
    /// order — the input for table renderers.
    pub fn scalars(&self) -> Vec<(&'static MetricDef, u64)> {
        CATALOG
            .iter()
            .zip(&self.slots)
            .filter_map(|(def, slot)| match slot {
                Slot::Counter(v) | Slot::Gauge(v) => Some((def, *v)),
                Slot::Histogram(_) => None,
            })
            .collect()
    }

    /// Every `(definition, histogram)` pair, in catalog order.
    pub fn histograms(&self) -> Vec<(&'static MetricDef, &Log2Histogram)> {
        CATALOG
            .iter()
            .zip(&self.slots)
            .filter_map(|(def, slot)| match slot {
                Slot::Histogram(h) => Some((def, h.as_ref())),
                _ => None,
            })
            .collect()
    }
}

fn kind_str(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

fn render_line(def: &MetricDef, slot: &Slot) -> String {
    let head = format!(
        "{{\"metric\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\"",
        def.name,
        kind_str(def.kind),
        def.unit
    );
    match slot {
        Slot::Counter(v) | Slot::Gauge(v) => format!("{head},\"value\":{v}}}"),
        Slot::Histogram(h) => {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(b, c)| format!("{{\"log2\":{b},\"count\":{c}}}"))
                .collect();
            format!(
                "{head},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                buckets.join(",")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Zero gets its own bucket; 1 is the first power-of-two bucket;
        // each bucket b covers [2^(b-1), 2^b).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for b in 1..64usize {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_index(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_index(hi), b, "upper edge of bucket {b}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Log2Histogram::default();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        for v in [0, 1, 3, 8, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1020);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.bucket(0), 1); // the zero
        assert_eq!(h.bucket(1), 1); // the one
        assert_eq!(h.bucket(2), 1); // 3
        assert_eq!(h.bucket(4), 2); // both 8s
        assert_eq!(h.bucket(10), 1); // 1000 in [512, 1024)
        assert_eq!(h.nonzero_buckets().len(), 5);
    }

    #[test]
    fn percentile_on_empty_histogram_is_none() {
        let h = Log2Histogram::default();
        for p in [0, 500, 950, 990, 1000] {
            assert_eq!(h.percentile(p), None);
        }
    }

    #[test]
    fn percentile_on_single_sample_is_exact() {
        let mut h = Log2Histogram::default();
        h.observe(37);
        for p in [0, 1, 500, 950, 990, 1000] {
            assert_eq!(h.percentile(p), Some(37), "p{p}");
        }
    }

    #[test]
    fn percentile_in_saturating_bucket_returns_exact_max() {
        let mut h = Log2Histogram::default();
        h.observe(1);
        h.observe(u64::MAX); // lands in the >= 2^63 overflow bucket
        h.observe(u64::MAX - 5);
        assert_eq!(h.percentile(1000), Some(u64::MAX));
        // p667 rank = 2 of 3 -> overflow bucket, clamped to observed max.
        assert_eq!(h.percentile(667), Some(u64::MAX));
        assert_eq!(h.percentile(333), Some(1));
    }

    #[test]
    fn percentile_walks_cumulative_counts() {
        let mut h = Log2Histogram::default();
        for v in [0, 0, 0, 0, 0, 0, 0, 0, 0, 100] {
            h.observe(v);
        }
        assert_eq!(h.percentile(500), Some(0), "median of mostly zeros");
        assert_eq!(h.percentile(900), Some(0), "rank 9 still in bucket 0");
        assert_eq!(h.percentile(950), Some(100), "rank 10 is the outlier");
        assert_eq!(h.percentile(1000), Some(100));
        // Out-of-range permille clamps to 1000.
        assert_eq!(h.percentile(5000), Some(100));
    }

    #[test]
    fn bucket_upper_brackets_bucket_index() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX - 1, u64::MAX] {
            let b = bucket_index(v);
            assert!(Log2Histogram::bucket_upper(b) >= v);
            if b > 0 {
                assert!(Log2Histogram::bucket_upper(b - 1) < v);
            }
        }
    }

    #[test]
    fn registry_accumulates_by_kind() {
        let mut r = Registry::new();
        r.inc(MetricId::Activates);
        r.add(MetricId::Activates, 4);
        r.set(MetricId::BankCount, 8);
        r.observe(MetricId::FifoOccupancy, 17);
        assert_eq!(r.value(MetricId::Activates), 5);
        assert_eq!(r.value(MetricId::BankCount), 8);
        let h = r.histogram(MetricId::FifoOccupancy).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket(5), 1); // 17 in [16, 32)
    }

    #[test]
    fn mismatched_kinds_are_ignored_not_panics() {
        let mut r = Registry::new();
        r.observe(MetricId::Activates, 3); // counter: ignored
        r.add(MetricId::FifoOccupancy, 3); // histogram: ignored
        r.set(MetricId::Activates, 3); // counter via gauge API: ignored
        assert_eq!(r.value(MetricId::Activates), 0);
        assert_eq!(r.histogram(MetricId::FifoOccupancy).unwrap().count(), 0);
    }

    #[test]
    fn jsonl_is_one_valid_json_object_per_metric() {
        let mut r = Registry::new();
        r.add(MetricId::RunCycles, 1234);
        r.observe(MetricId::OpenSpanCycles, 40);
        let text = r.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), CATALOG.len());
        for line in &lines {
            let v = serde_json::from_str(line).expect("valid JSON");
            assert!(v.get("metric").and_then(|m| m.as_str()).is_some());
            assert!(v.get("kind").and_then(|k| k.as_str()).is_some());
        }
        assert!(text.contains(
            "\"metric\":\"run.cycles\",\"kind\":\"counter\",\"unit\":\"cycles\",\"value\":1234"
        ));
        assert!(text.contains("\"buckets\":[{\"log2\":6,\"count\":1}]"));
    }

    #[test]
    fn scalars_and_histograms_partition_the_catalog() {
        let r = Registry::new();
        assert_eq!(r.scalars().len() + r.histograms().len(), CATALOG.len());
    }
}
