//! Line-transfer scheduling for the natural-order controller.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use faults::FaultInjector;
use memsys::{MemorySystem, SystemMap};
use rdram::{Command, Cycle, Location, SharedSink, PACKET_BYTES};
use smc::{LivelockReport, SmcError, StreamDescriptor, StreamKind, DEFAULT_WATCHDOG_CYCLES};
use telemetry::{Event, SharedTelemetry};

/// Page management applied to each cacheline burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinePolicy {
    /// Precharge after every line burst (pairs with CLI).
    ClosedPage,
    /// Leave the page open; precharge only on a row conflict (pairs with PI).
    OpenPage,
}

/// How the cache treats stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WritePolicy {
    /// The paper's optimistic model: a store's line moves to memory once,
    /// as a write transfer; writebacks are ignored.
    #[default]
    StoreDirect,
    /// Realistic write-allocate: a store first *fetches* its line, and the
    /// dirty line is written back when the stream moves past it — two
    /// transfers per written line.
    WriteAllocate,
}

/// One cacheline transfer in the natural-order schedule.
#[derive(Debug, Clone)]
struct LineOp {
    stream: usize,
    line_addr: u64,
    /// Direction of the transfer on the DATA bus.
    dir: StreamKind,
    /// Iteration whose access first touched this line (dependency anchor
    /// for stores).
    trigger_iter: u64,
    /// (stream, element) pairs carried by the line, in access order —
    /// shared lines (e.g. daxpy's y read- and write-streams) may carry
    /// elements of several streams.
    elements: Vec<(usize, u64)>,
    /// Store-dependency gating: the loads of `trigger_iter` must arrive
    /// before this transfer may begin.
    gated: bool,
    /// Record per-element arrival times (read data the CPU consumes).
    record_arrivals: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Precharge,
    Activate,
    /// Next packet index within the line still to transfer.
    Col(u64),
}

#[derive(Debug, Clone)]
struct InFlight {
    op: LineOp,
    loc: Location,
    stage: Stage,
    /// DATA NACKs absorbed by this line so far.
    retries: u32,
    /// Packet index to resume at after redoing ROW work (NACK recovery).
    resume_at: u64,
}

/// Timing summary of a completed natural-order run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// End cycle of the last DATA packet.
    pub last_data_cycle: Cycle,
    /// Cacheline transfers performed.
    pub line_transfers: u64,
    /// Cycles the controller spent with work queued but nothing issuable.
    pub idle_cycles: Cycle,
    /// DATA packets NACKed by the fault injector and retried.
    pub data_nacks: u64,
}

/// The natural-order cacheline controller (see the [crate docs](crate)).
#[derive(Debug)]
pub struct BaselineController {
    streams: Vec<StreamDescriptor>,
    map: SystemMap,
    policy: LinePolicy,
    line_bytes: u64,
    queue: VecDeque<LineOp>,
    in_flight: Vec<InFlight>,
    /// Per-stream, per-element arrival cycle of read data (end of its DATA
    /// packet); `None` until scheduled.
    arrivals: Vec<Vec<Option<Cycle>>>,
    last_data_cycle: Cycle,
    line_transfers: u64,
    idle_cycles: Cycle,
    max_in_flight: usize,
    /// (hits, misses, writebacks) of the modeled cache, if any.
    cache_stats: Option<(u64, u64, u64)>,
    faults: FaultInjector,
    data_nacks: u64,
    watchdog_limit: Cycle,
    last_fingerprint: u64,
    last_progress: Cycle,
    last_issued: Option<(Command, Cycle)>,
    trace_sink: Option<SharedSink>,
    telemetry: Option<SharedTelemetry>,
    /// NACK count at the previous tick; the telemetry emitter turns the
    /// per-tick delta into events.
    prev_nacks: u64,
}

impl BaselineController {
    /// Build the natural-order schedule for `streams` (in the processor's
    /// per-iteration access order) over cachelines of `line_bytes`.
    ///
    /// All streams must have the same length, as in the paper's model.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty, lengths differ, or `line_bytes` is not
    /// a positive multiple of the 16-byte packet.
    pub fn new(
        streams: Vec<StreamDescriptor>,
        map: SystemMap,
        policy: LinePolicy,
        line_bytes: u64,
    ) -> Self {
        assert!(!streams.is_empty(), "need at least one stream");
        assert!(
            line_bytes > 0 && line_bytes.is_multiple_of(PACKET_BYTES),
            "cacheline must be a positive multiple of {PACKET_BYTES} bytes"
        );
        let n = streams[0].length;
        assert!(
            streams.iter().all(|s| s.length == n),
            "the model assumes equal-length streams"
        );
        let queue = Self::build_queue(&streams, line_bytes, WritePolicy::StoreDirect);
        let arrivals = streams
            .iter()
            .map(|s| vec![None; s.length as usize])
            .collect();
        BaselineController {
            streams,
            map,
            policy,
            line_bytes,
            queue,
            in_flight: Vec::new(),
            arrivals,
            last_data_cycle: 0,
            line_transfers: 0,
            idle_cycles: 0,
            max_in_flight: 4,
            cache_stats: None,
            faults: FaultInjector::inert(),
            data_nacks: 0,
            watchdog_limit: DEFAULT_WATCHDOG_CYCLES,
            last_fingerprint: 0,
            last_progress: 0,
            last_issued: None,
            trace_sink: None,
            telemetry: None,
            prev_nacks: 0,
        }
    }

    /// Observe every command this controller drives into the device: the
    /// sink is installed on the device at the next [`tick`](Self::tick), so
    /// line-transfer and retry commands all reach it. Used by the `checker`
    /// crate's timing-conformance analyzer.
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.trace_sink = Some(sink);
    }

    /// Attach a telemetry handle. From the next [`tick`](Self::tick) on,
    /// the controller emits one [`Event`] per fault-recovery incident
    /// (injected stall cycles, DATA NACKs) and per watchdog trip. When no
    /// handle is attached the per-tick cost is a single `Option` check.
    pub fn set_telemetry(&mut self, tel: SharedTelemetry) {
        self.telemetry = Some(tel);
    }

    /// Subject the controller to an injected fault timeline. Install the
    /// same injector (same plan and seed) on the device so both sides agree
    /// on when banks are busy.
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Replace the forward-progress watchdog threshold (cycles without
    /// observable progress before [`tick`](Self::tick) returns
    /// [`SmcError::Livelock`]).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_watchdog(mut self, limit: Cycle) -> Self {
        assert!(limit > 0, "the watchdog needs a nonzero threshold");
        self.watchdog_limit = limit;
        self
    }

    /// Switch the store treatment (rebuilds the schedule). Call before the
    /// first [`tick`](Self::tick).
    pub fn with_write_policy(mut self, write_policy: WritePolicy) -> Self {
        self.queue = Self::build_queue(&self.streams, self.line_bytes, write_policy);
        self
    }

    /// Route the streams through a real set-associative cache instead of
    /// the paper's idealized per-stream line buffers (rebuilds the
    /// schedule; call before the first [`tick`](Self::tick)). Conflict
    /// misses become extra line fetches and dirty evictions become
    /// writebacks — the cost the paper notes but leaves unmeasured. The
    /// cache's hit/miss/writeback counts are available afterwards through
    /// [`cache_stats`](Self::cache_stats).
    ///
    /// # Panics
    ///
    /// Panics if the cache line size differs from the controller's or the
    /// configuration is invalid.
    pub fn with_cache(mut self, cache_cfg: crate::cache::CacheConfig) -> Self {
        assert_eq!(
            cache_cfg.line_bytes, self.line_bytes,
            "cache and controller line sizes must agree"
        );
        let (queue, stats) = Self::build_queue_cached(&self.streams, cache_cfg);
        self.queue = queue;
        self.cache_stats = Some(stats);
        self
    }

    /// Hit/miss/writeback counts of the modeled cache, when
    /// [`with_cache`](Self::with_cache) was used.
    pub fn cache_stats(&self) -> Option<(u64, u64, u64)> {
        self.cache_stats
    }

    /// Build the schedule through a shared set-associative cache: every
    /// miss fetches a line, every dirty eviction writes one back.
    fn build_queue_cached(
        streams: &[StreamDescriptor],
        cache_cfg: crate::cache::CacheConfig,
    ) -> (VecDeque<LineOp>, (u64, u64, u64)) {
        use crate::cache::{CacheModel, CacheOutcome};
        let n = streams[0].length;
        let line_bytes = cache_cfg.line_bytes;
        let mut cache = CacheModel::new(cache_cfg);
        let mut queue: VecDeque<LineOp> = VecDeque::new();
        // Latest fetch op per resident line.
        let mut owner: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
        let writeback = |queue: &mut VecDeque<LineOp>, line_addr: u64, i: u64| {
            queue.push_back(LineOp {
                stream: 0,
                line_addr,
                dir: StreamKind::Write,
                trigger_iter: i,
                elements: Vec::new(),
                gated: false,
                record_arrivals: false,
            });
        };
        for i in 0..n {
            for (s, desc) in streams.iter().enumerate() {
                let addr = desc.element_addr(i);
                let line = addr & !(line_bytes - 1);
                let is_store = desc.kind == StreamKind::Write;
                match cache.access(addr, is_store) {
                    CacheOutcome::Hit => {
                        if let Some(&idx) = owner.get(&line) {
                            queue[idx].elements.push((s, i));
                        }
                    }
                    CacheOutcome::Miss { evicted_dirty } => {
                        if let Some(victim) = evicted_dirty {
                            writeback(&mut queue, victim, i);
                        }
                        queue.push_back(LineOp {
                            stream: s,
                            line_addr: line,
                            // Every miss fetches (write-allocate).
                            dir: StreamKind::Read,
                            trigger_iter: i,
                            elements: vec![(s, i)],
                            gated: is_store,
                            record_arrivals: true,
                        });
                        owner.insert(line, queue.len() - 1);
                    }
                }
            }
        }
        // Flush the remaining dirty lines.
        for line_addr in cache.dirty_lines() {
            writeback(&mut queue, line_addr, n - 1);
        }
        (queue, (cache.hits(), cache.misses(), cache.writebacks()))
    }

    /// Generate line transfers in natural order: iteration by iteration,
    /// stream by stream, a new transfer whenever an access leaves the
    /// stream's current line. Under [`WritePolicy::WriteAllocate`], stores
    /// *fetch* their line and enqueue a writeback when the stream moves on.
    fn build_queue(
        streams: &[StreamDescriptor],
        line_bytes: u64,
        write_policy: WritePolicy,
    ) -> VecDeque<LineOp> {
        let n = streams[0].length;
        let allocate = write_policy == WritePolicy::WriteAllocate;
        let mut queue: VecDeque<LineOp> = VecDeque::new();
        let mut current_line: Vec<Option<u64>> = vec![None; streams.len()];
        let mut open_op: Vec<Option<usize>> = vec![None; streams.len()];
        let writeback = |queue: &mut VecDeque<LineOp>, s: usize, line: u64, i: u64| {
            queue.push_back(LineOp {
                stream: s,
                line_addr: line,
                dir: StreamKind::Write,
                trigger_iter: i,
                elements: Vec::new(),
                gated: false,
                record_arrivals: false,
            });
        };
        for i in 0..n {
            for (s, desc) in streams.iter().enumerate() {
                let addr = desc.element_addr(i);
                let line = addr & !(line_bytes - 1);
                // A hit on the open line appends to its op; anything else —
                // including the (impossible) case of a current line with no
                // recorded op — opens a fresh line op.
                if let (true, Some(idx)) = (current_line[s] == Some(line), open_op[s]) {
                    queue[idx].elements.push((s, i));
                } else {
                    // Evict the previous dirty line of a write-allocate
                    // store stream.
                    if allocate && desc.kind == StreamKind::Write {
                        if let Some(prev) = current_line[s] {
                            writeback(&mut queue, s, prev, i);
                        }
                    }
                    let is_store = desc.kind == StreamKind::Write;
                    queue.push_back(LineOp {
                        stream: s,
                        line_addr: line,
                        // Write-allocate stores fetch the line first.
                        dir: if is_store && allocate {
                            StreamKind::Read
                        } else {
                            desc.kind
                        },
                        trigger_iter: i,
                        elements: vec![(s, i)],
                        gated: is_store,
                        record_arrivals: desc.kind == StreamKind::Read,
                    });
                    current_line[s] = Some(line);
                    open_op[s] = Some(queue.len() - 1);
                }
            }
        }
        // Flush the final dirty lines.
        if allocate {
            for (s, desc) in streams.iter().enumerate() {
                if desc.kind == StreamKind::Write {
                    if let Some(line) = current_line[s] {
                        writeback(&mut queue, s, line, n - 1);
                    }
                }
            }
        }
        queue
    }

    /// Limit the number of line transfers in flight (default 4, the Direct
    /// RDRAM's outstanding-transaction limit). A value of 1 models a
    /// *blocking* controller — one miss at a time, the assumption behind the
    /// paper's single-stream Equations 5.2/5.3.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_max_in_flight(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one in-flight transfer");
        self.max_in_flight = n;
        self
    }

    /// Arrival cycle of read element `elem` of stream `stream`, once its
    /// DATA packet has been scheduled.
    pub fn elem_arrival(&self, stream: usize, elem: u64) -> Option<Cycle> {
        self.arrivals[stream][elem as usize]
    }

    /// Whether every line transfer has completed issue.
    pub fn done(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }

    /// Dependency for a store line: the loads of its trigger iteration must
    /// have delivered their elements. Returns the cycle at which the store
    /// may begin, or `None` while unknown.
    fn store_dep_cycle(&self, op: &LineOp) -> Option<Cycle> {
        let mut dep = 0;
        for (s, desc) in self.streams.iter().enumerate() {
            if desc.kind == StreamKind::Read {
                match self.arrivals[s][op.trigger_iter as usize] {
                    Some(c) => dep = dep.max(c),
                    None => return None,
                }
            }
        }
        Some(dep)
    }

    fn try_admit(&mut self, now: Cycle) {
        while self.in_flight.len() < self.max_in_flight {
            // A blocking controller (one outstanding transfer) waits for the
            // previous line fill to complete before starting the next.
            if self.max_in_flight == 1 && now < self.last_data_cycle {
                break;
            }
            let Some(op) = self.queue.front() else { break };
            if op.gated {
                match self.store_dep_cycle(op) {
                    Some(dep) if dep <= now => {}
                    _ => break, // store not ready: in-order issue stalls
                }
            }
            let Some(op) = self.queue.pop_front() else {
                break;
            };
            let loc = self.map.decode(op.line_addr);
            // The ROW stage is derived from live bank state in tick(), just
            // before the op's first command issues.
            self.in_flight.push(InFlight {
                op,
                loc,
                stage: Stage::Col(0),
                retries: 0,
                resume_at: 0,
            });
        }
    }

    fn packets_per_line(&self) -> u64 {
        self.line_bytes / PACKET_BYTES
    }

    /// Advance one cycle: admit ready transfers and issue at most one
    /// command packet.
    ///
    /// # Errors
    ///
    /// [`SmcError::Protocol`] if the device rejects a scheduled command,
    /// [`SmcError::RetryExhausted`] if an injected DATA NACK outlasts the
    /// fault plan's retry budget, or [`SmcError::Livelock`] when the
    /// forward-progress watchdog sees no command issued for the watchdog
    /// threshold.
    pub fn tick(&mut self, now: Cycle, dev: &mut MemorySystem) -> Result<(), SmcError> {
        if let Some(sink) = &self.trace_sink {
            if !dev.has_cmd_sink() {
                dev.set_cmd_sink(sink.clone());
            }
        }
        if self.faults.stalled(now) {
            if !self.done() {
                self.idle_cycles += 1;
                if let Some(tel) = &self.telemetry {
                    tel.record(Event::InjectedStall { cycle: now });
                }
            }
            return Ok(());
        }
        self.step(now, dev)?;
        if let Some(tel) = &self.telemetry {
            for _ in self.prev_nacks..self.data_nacks {
                tel.record(Event::DataNack {
                    cycle: now,
                    bank: self.last_issued.map(|(c, _)| c.bank()),
                });
            }
            self.prev_nacks = self.data_nacks;
        }
        if self.done() {
            self.last_progress = now;
            return Ok(());
        }
        let fp = self.fingerprint(dev);
        if fp != self.last_fingerprint {
            self.last_fingerprint = fp;
            self.last_progress = now;
        } else if now.saturating_sub(self.last_progress) >= self.watchdog_limit {
            if let Some(tel) = &self.telemetry {
                tel.record(Event::WatchdogTrip {
                    cycle: now,
                    stalled_for: now.saturating_sub(self.last_progress),
                });
            }
            return Err(SmcError::Livelock(Box::new(self.livelock_report(now, dev))));
        }
        Ok(())
    }

    /// Hash of everything that changes when the schedule makes progress.
    fn fingerprint(&self, dev: &MemorySystem) -> u64 {
        let s = dev.stats();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(0x100_0000_01b3);
        };
        for v in [
            s.activates,
            s.precharges,
            s.auto_precharges,
            s.read_packets,
            s.write_packets,
            self.queue.len() as u64,
            self.in_flight.len() as u64,
            self.line_transfers,
        ] {
            mix(&mut h, v);
        }
        h
    }

    fn livelock_report(&self, now: Cycle, dev: &MemorySystem) -> LivelockReport {
        let banks = dev.total_banks();
        let (last_command, last_command_cycle) = match self.last_issued {
            Some((c, t)) => (Some(format!("{c:?}")), t),
            None => (None, 0),
        };
        LivelockReport {
            now,
            stalled_for: now.saturating_sub(self.last_progress),
            last_command,
            last_command_cycle,
            open_banks: (0..banks)
                .filter_map(|b| dev.open_row(b).map(|r| (b, r)))
                .collect(),
            fifo_occupancy: Vec::new(),
            in_flight: self.in_flight.len(),
            pending: self.queue.len(),
        }
    }

    /// One scheduling step: admit ready transfers and issue at most one
    /// command packet.
    fn step(&mut self, now: Cycle, dev: &mut MemorySystem) -> Result<(), SmcError> {
        self.try_admit(now);
        // Find the oldest in-flight op whose next command can start now.
        for k in 0..self.in_flight.len() {
            // An op must not issue ROW commands for a bank while an older
            // in-flight op still has column accesses outstanding there — a
            // precharge would yank the row from under it.
            let bank = self.in_flight[k].loc.bank;
            let bank_busy = self.in_flight[..k].iter().any(|o| o.loc.bank == bank);
            // Recompute the stage from live bank state when the op has not
            // started its column phase.
            if self.in_flight[k].stage == Stage::Col(0) {
                if bank_busy {
                    continue;
                }
                let plan = dev.plan(self.in_flight[k].loc);
                self.in_flight[k].stage = if plan.needs_precharge {
                    Stage::Precharge
                } else if plan.needs_activate {
                    Stage::Activate
                } else {
                    Stage::Col(0)
                };
            }
            if bank_busy && matches!(self.in_flight[k].stage, Stage::Precharge | Stage::Activate) {
                continue;
            }
            let f = &self.in_flight[k];
            let cmd = self.command_for(f);
            if dev.earliest(&cmd, now) > now {
                continue;
            }
            return self.issue(k, cmd, now, dev);
        }
        if !self.queue.is_empty() || !self.in_flight.is_empty() {
            self.idle_cycles += 1;
        }
        Ok(())
    }

    fn command_for(&self, f: &InFlight) -> Command {
        match f.stage {
            Stage::Precharge => Command::precharge(f.loc.bank),
            Stage::Activate => Command::activate(f.loc.bank, f.loc.row),
            Stage::Col(p) => {
                let col = f.loc.col + p * PACKET_BYTES;
                let base = match f.op.dir {
                    StreamKind::Read => Command::read(f.loc.bank, col),
                    StreamKind::Write => Command::write(f.loc.bank, col),
                };
                let last = p + 1 == self.packets_per_line();
                if last && self.policy == LinePolicy::ClosedPage {
                    base.with_auto_precharge()
                } else {
                    base
                }
            }
        }
    }

    fn issue(
        &mut self,
        k: usize,
        cmd: Command,
        now: Cycle,
        dev: &mut MemorySystem,
    ) -> Result<(), SmcError> {
        let stage = self.in_flight[k].stage;
        // Label the op's ROW ACT (or first COL on a page hit) for the
        // timing-diagram figures.
        if matches!(stage, Stage::Activate | Stage::Col(0)) {
            let f = &self.in_flight[k];
            let verb = match (f.op.dir, f.op.gated) {
                (StreamKind::Read, false) => "ld",
                (StreamKind::Read, true) => "st-fetch",
                (StreamKind::Write, true) => "st",
                (StreamKind::Write, false) => "wb",
            };
            dev.set_label(format!(
                "{verb} {}[{}]",
                self.streams[f.op.stream].name, f.op.trigger_iter
            ));
        }
        let outcome = dev.issue_at(&cmd, now)?;
        self.last_issued = Some((cmd, now));
        match stage {
            Stage::Precharge => self.in_flight[k].stage = Stage::Activate,
            Stage::Activate => {
                self.in_flight[k].stage = Stage::Col(self.in_flight[k].resume_at);
            }
            Stage::Col(p) => {
                let Some(data) = outcome.data else {
                    return Err(SmcError::Internal(
                        "COL command completed without a data interval",
                    ));
                };
                self.last_data_cycle = self.last_data_cycle.max(data.end);
                let bank = self.in_flight[k].loc.bank;
                if self
                    .faults
                    .nack_data(bank, data.end, self.in_flight[k].retries)
                {
                    // The bus cycles are spent but no data moved: retry the
                    // packet. The row may have been auto-precharged away, so
                    // re-derive the stage from live bank state.
                    self.data_nacks += 1;
                    self.in_flight[k].retries += 1;
                    let retries = self.in_flight[k].retries;
                    if retries > self.faults.nack_retry_limit() {
                        return Err(SmcError::RetryExhausted {
                            bank,
                            addr: self.in_flight[k].op.line_addr + p * PACKET_BYTES,
                            attempts: retries,
                        });
                    }
                    self.in_flight[k].resume_at = p;
                    let plan = dev.plan(self.in_flight[k].loc);
                    self.in_flight[k].stage = if plan.needs_precharge {
                        Stage::Precharge
                    } else if plan.needs_activate {
                        Stage::Activate
                    } else {
                        Stage::Col(p)
                    };
                    return Ok(());
                }
                // Linefill forwarding: each element becomes visible when
                // its own packet starts arriving (the paper: the store "can
                // be initiated as soon as the first data packet is
                // received").
                if self.in_flight[k].op.record_arrivals {
                    let op = &self.in_flight[k].op;
                    let pkt_lo = op.line_addr + p * PACKET_BYTES;
                    for &(es, e) in &op.elements {
                        let desc = &self.streams[es];
                        if desc.kind != StreamKind::Read {
                            continue;
                        }
                        let a = desc.element_addr(e);
                        if a >= pkt_lo && a < pkt_lo + PACKET_BYTES {
                            self.arrivals[es][e as usize] = Some(data.start);
                        }
                    }
                }
                if p + 1 == self.packets_per_line() {
                    self.line_transfers += 1;
                    self.in_flight.remove(k);
                } else {
                    self.in_flight[k].stage = Stage::Col(p + 1);
                }
            }
        }
        Ok(())
    }

    /// Run the whole schedule, returning the timing summary.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SmcError`] a tick reports — under fault
    /// injection that can be a livelock or an exhausted retry budget; on a
    /// fault-free run any error is an internal bug.
    pub fn run_to_completion(
        &mut self,
        dev: &mut MemorySystem,
    ) -> Result<BaselineResult, SmcError> {
        let mut now = 0;
        while !self.done() {
            self.tick(now, dev)?;
            now += 1;
        }
        Ok(BaselineResult {
            last_data_cycle: self.last_data_cycle,
            line_transfers: self.line_transfers,
            idle_cycles: self.idle_cycles,
            data_nacks: self.data_nacks,
        })
    }

    /// End cycle of the last DATA packet scheduled so far.
    pub fn last_data_cycle(&self) -> Cycle {
        self.last_data_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdram::{AddressMap, DeviceConfig, Interleave};

    fn cli() -> (MemorySystem, SystemMap) {
        let cfg = DeviceConfig::default();
        let map = AddressMap::new(Interleave::Cacheline { line_bytes: 32 }, &cfg).unwrap();
        (MemorySystem::single(cfg), SystemMap::single(map))
    }

    fn pi() -> (MemorySystem, SystemMap) {
        let cfg = DeviceConfig::default();
        let map = AddressMap::new(Interleave::Page, &cfg).unwrap();
        (MemorySystem::single(cfg), SystemMap::single(map))
    }

    /// Vector bases staggered by `unit` bytes so successive vectors map to
    /// different banks (one line for CLI, one page for PI — the analytic
    /// models' conflict-free assumption).
    fn three_stream(n: u64, unit: u64) -> Vec<StreamDescriptor> {
        vec![
            StreamDescriptor::read("x", 0, 1, n),
            StreamDescriptor::read("y", 64 * 1024 + unit, 1, n),
            StreamDescriptor::write("z", 128 * 1024 + 2 * unit, 1, n),
        ]
    }

    #[test]
    fn single_stream_cli_matches_the_analytic_shape() {
        // One read stream, CLI closed-page: the bound is T_LCC per line =
        // 24 cycles per 4 words -> 33.3% of peak. The simulation pipelines
        // ACTs across banks, so it should be close to (and not beat) ~6
        // cycles/word.
        let (mut dev, map) = cli();
        let streams = vec![StreamDescriptor::read("x", 0, 1, 1024)];
        let mut ctl = BaselineController::new(streams, map, LinePolicy::ClosedPage, 32);
        let r = ctl.run_to_completion(&mut dev).expect("fault-free run");
        let words = 1024.0;
        let cyc_per_word = r.last_data_cycle as f64 / words;
        // tRR-limited: one line (4 words) per 2*tRR..=T_LCC window.
        assert!(cyc_per_word >= 2.0, "cannot beat peak: {cyc_per_word}");
        assert!(cyc_per_word < 7.0, "too slow: {cyc_per_word}");
        assert_eq!(r.line_transfers, 256);
    }

    #[test]
    fn pi_open_page_beats_cli_closed_page_for_streams() {
        let n = 1024;
        let run = |(mut dev, map): (MemorySystem, SystemMap), pol, unit| {
            let mut ctl = BaselineController::new(three_stream(n, unit), map, pol, 32);
            ctl.run_to_completion(&mut dev)
                .expect("fault-free run")
                .last_data_cycle
        };
        let cli_cycles = run(cli(), LinePolicy::ClosedPage, 32);
        let pi_cycles = run(pi(), LinePolicy::OpenPage, 1024);
        assert!(
            pi_cycles < cli_cycles,
            "PI ({pi_cycles}) should beat CLI ({cli_cycles}) for streaming"
        );
    }

    #[test]
    fn stores_wait_for_their_iterations_loads() {
        let (mut dev, map) = cli();
        let mut ctl =
            BaselineController::new(three_stream(64, 32), map, LinePolicy::ClosedPage, 32);
        let _ = ctl.run_to_completion(&mut dev).expect("fault-free run");
        // x[0] and y[0] must both arrive; z's first line transfer starts
        // after them, so every arrival is defined.
        let x0 = ctl.elem_arrival(0, 0).unwrap();
        let y0 = ctl.elem_arrival(1, 0).unwrap();
        assert!(
            x0 > 0 && y0 > x0,
            "loads pipeline in order: x0={x0} y0={y0}"
        );
    }

    #[test]
    fn forwarding_gives_elementwise_arrivals() {
        let (mut dev, map) = cli();
        let streams = vec![StreamDescriptor::read("x", 0, 1, 8)];
        let mut ctl = BaselineController::new(streams, map, LinePolicy::ClosedPage, 32);
        let _ = ctl.run_to_completion(&mut dev).expect("fault-free run");
        // Elements 0-1 are in the line's first packet, 2-3 in the second.
        let a0 = ctl.elem_arrival(0, 0).unwrap();
        let a2 = ctl.elem_arrival(0, 2).unwrap();
        assert_eq!(a2 - a0, 4, "second packet lands one tPACK later");
        assert_eq!(ctl.elem_arrival(0, 1).unwrap(), a0);
    }

    #[test]
    fn strided_access_fetches_one_line_per_element() {
        let (mut dev, map) = cli();
        let streams = vec![StreamDescriptor::read("x", 0, 8, 32)];
        let mut ctl = BaselineController::new(streams, map, LinePolicy::ClosedPage, 32);
        let r = ctl.run_to_completion(&mut dev).expect("fault-free run");
        assert_eq!(
            r.line_transfers, 32,
            "stride 8 words skips every other line"
        );
    }

    #[test]
    fn write_only_kernel_needs_no_dependencies() {
        let (mut dev, map) = pi();
        let streams = vec![StreamDescriptor::write("y", 0, 1, 256)];
        let mut ctl = BaselineController::new(streams, map, LinePolicy::OpenPage, 32);
        let r = ctl.run_to_completion(&mut dev).expect("fault-free run");
        assert_eq!(r.line_transfers, 64);
        assert!(ctl.done());
    }

    #[test]
    fn write_allocate_doubles_write_line_traffic_and_slows_the_run() {
        let n = 256;
        let run = |policy: WritePolicy| {
            let (mut dev, map) = cli();
            let mut ctl =
                BaselineController::new(three_stream(n, 32), map, LinePolicy::ClosedPage, 32)
                    .with_write_policy(policy);
            ctl.run_to_completion(&mut dev).expect("fault-free run")
        };
        let direct = run(WritePolicy::StoreDirect);
        let allocate = run(WritePolicy::WriteAllocate);
        // One write stream of n/4 lines: each now fetched AND written back.
        assert_eq!(allocate.line_transfers, direct.line_transfers + n / 4);
        assert!(
            allocate.last_data_cycle > direct.last_data_cycle,
            "writebacks must cost time: {} !> {}",
            allocate.last_data_cycle,
            direct.last_data_cycle
        );
    }

    #[test]
    fn cache_model_matches_line_buffers_for_unit_stride() {
        // Unit-stride streams fit easily in a 16 KB cache: the cached
        // schedule transfers the same lines as the idealized model plus the
        // final dirty flush.
        let n = 256;
        let (mut dev, map) = cli();
        let mut ideal =
            BaselineController::new(three_stream(n, 32), map, LinePolicy::ClosedPage, 32);
        let ideal_r = ideal.run_to_completion(&mut dev).expect("fault-free run");
        let (mut dev2, map2) = cli();
        let mut cached =
            BaselineController::new(three_stream(n, 32), map2, LinePolicy::ClosedPage, 32)
                .with_cache(crate::cache::CacheConfig::i860xp());
        let cached_r = cached.run_to_completion(&mut dev2).expect("fault-free run");
        let (hits, misses, _) = cached.cache_stats().unwrap();
        // Every stream's lines miss once (z's stores write-allocate).
        assert_eq!(misses, 3 * n / 4);
        assert!(hits > 0);
        // Fetches equal the ideal model's transfers; the z writebacks add
        // n/4 more.
        assert_eq!(cached_r.line_transfers, ideal_r.line_transfers + n / 4);
    }

    #[test]
    fn power_of_two_strides_storm_the_cache() {
        // Stride 2048 words = 16 KB: all three vectors' accesses collide in
        // one cache set, so every access misses — the conflict cost the
        // paper left unmeasured. (The device is too small for full 16 KB
        // strides at length 64, so use a tiny 1 KB cache and 128-byte-
        // footprint strides instead: same mechanism.)
        let tiny = crate::cache::CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 32,
            ways: 1,
        };
        let n = 64;
        let stride = 128 / 8; // 16 words = one tiny-cache way apart
        let mk = |unit: u64| {
            vec![
                StreamDescriptor::read("x", 0, stride, n),
                StreamDescriptor::read("y", 64 * 1024 + unit, stride, n),
                StreamDescriptor::write("z", 128 * 1024 + 2 * unit, stride, n),
            ]
        };
        let (mut dev, map) = cli();
        let mut cached =
            BaselineController::new(mk(1024), map, LinePolicy::ClosedPage, 32).with_cache(tiny);
        let r = cached.run_to_completion(&mut dev).expect("fault-free run");
        let (_, misses, writebacks) = cached.cache_stats().unwrap();
        // Strided accesses at one-line-per-element already miss per access;
        // the conflict cache also evicts dirty z lines continuously.
        assert_eq!(misses, 3 * n);
        // Most dirty z lines are evicted mid-run; the handful still
        // resident flush at the end.
        assert!(writebacks >= n - 16, "dirty z lines evicted: {writebacks}");
        assert_eq!(r.line_transfers, 4 * n, "3n fetches + n writebacks");
    }

    #[test]
    fn permanently_busy_banks_trip_the_watchdog() {
        use faults::{FaultInjector, FaultPlan};
        let (mut dev, map) = cli();
        let plan = FaultPlan::parse("busy:*:1:1").unwrap();
        let inj = FaultInjector::new(&plan, 7);
        dev.set_faults(std::sync::Arc::new(inj.clone()));
        let streams = vec![StreamDescriptor::read("x", 0, 1, 64)];
        let mut ctl =
            BaselineController::new(streams, map, LinePolicy::ClosedPage, 32).with_watchdog(500);
        ctl.set_faults(inj);
        match ctl.run_to_completion(&mut dev) {
            Err(SmcError::Livelock(report)) => {
                assert!(report.stalled_for >= 500, "{report}");
                assert!(report.last_command.is_none(), "nothing ever issued");
                assert!(report.pending + report.in_flight > 0, "work remained");
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn nacked_data_packets_are_retried_to_completion() {
        use faults::{FaultInjector, FaultPlan};
        let (mut dev, map) = cli();
        let plan = FaultPlan::parse("nack:300:10").unwrap();
        let inj = FaultInjector::new(&plan, 11);
        dev.set_faults(std::sync::Arc::new(inj.clone()));
        let streams = vec![StreamDescriptor::read("x", 0, 1, 256)];
        let mut ctl = BaselineController::new(streams, map, LinePolicy::ClosedPage, 32);
        ctl.set_faults(inj);
        let r = ctl.run_to_completion(&mut dev).expect("retries recover");
        assert!(r.data_nacks > 0, "plan should have injected NACKs");
        assert_eq!(r.line_transfers, 64, "every line still completes");
    }

    #[test]
    fn injected_stalls_pause_but_do_not_kill_the_run() {
        use faults::{FaultInjector, FaultPlan};
        let (mut dev, map) = cli();
        let plan = FaultPlan::parse("stall:100:20").unwrap();
        let inj = FaultInjector::new(&plan, 3);
        dev.set_faults(std::sync::Arc::new(inj.clone()));
        let streams = vec![StreamDescriptor::read("x", 0, 1, 64)];
        let mut ctl = BaselineController::new(streams, map, LinePolicy::ClosedPage, 32);
        ctl.set_faults(inj);
        let r = ctl
            .run_to_completion(&mut dev)
            .expect("stalls only slow us");
        assert_eq!(r.line_transfers, 16);
        assert!(r.idle_cycles > 0, "stall windows count as idle time");
    }

    #[test]
    fn trace_sink_observes_every_issued_command() {
        use rdram::{CommandTrace, SharedSink};
        use std::sync::{Arc, Mutex};
        let (mut dev, map) = cli();
        let trace = Arc::new(Mutex::new(CommandTrace::new()));
        let streams = vec![StreamDescriptor::read("x", 0, 1, 64)];
        let mut ctl = BaselineController::new(streams, map, LinePolicy::ClosedPage, 32);
        ctl.set_trace_sink(SharedSink::from_trace(Arc::clone(&trace)));
        let _ = ctl.run_to_completion(&mut dev).expect("fault-free run");
        let recs = rdram::sink::drain_trace(&trace);
        let stats = dev.stats();
        assert_eq!(
            recs.len() as u64,
            stats.activates + stats.precharges + stats.read_packets + stats.write_packets,
            "one record per issued command"
        );
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn unequal_lengths_rejected() {
        let (_, map) = cli();
        let streams = vec![
            StreamDescriptor::read("x", 0, 1, 8),
            StreamDescriptor::read("y", 4096, 1, 16),
        ];
        let _ = BaselineController::new(streams, map, LinePolicy::ClosedPage, 32);
    }
}
