//! The conventional comparator: **natural-order cacheline accesses**.
//!
//! A traditional memory controller treats stream references like any other
//! traffic: each miss fetches a whole cacheline, in exactly the order the
//! computation touches the data. This crate models that controller at the
//! level of the paper's Figures 5 and 6:
//!
//! * per-stream linefill buffers with **forwarding** — the processor can
//!   consume an element as soon as *its* DATA packet arrives, before the
//!   whole line is in (as in the PowerPC 604e the paper cites);
//! * a non-blocking front end with up to four line transfers in flight (the
//!   Direct RDRAM's outstanding-request limit), so consecutive line fetches
//!   pipeline at the `tRR` command rate;
//! * in-order issue with the paper's one data dependency: the store of
//!   iteration *i* cannot begin until the loads of iteration *i* have
//!   delivered their elements;
//! * closed-page (auto-precharge after each line burst) or open-page
//!   management, matching the CLI / PI organizations;
//! * no dirty-line writebacks and no cache-conflict misses — the same
//!   optimistic simplifications as the paper's analytic bounds.
//!
//! # Example
//!
//! ```
//! use baseline::BaselineController;
//! use memsys::{MemorySystem, SystemMap};
//! use rdram::{AddressMap, DeviceConfig, Interleave};
//! use smc::StreamDescriptor;
//!
//! let cfg = DeviceConfig::default();
//! let map = SystemMap::single(
//!     AddressMap::new(Interleave::Cacheline { line_bytes: 32 }, &cfg).unwrap(),
//! );
//! let mut dev = MemorySystem::single(cfg);
//! let streams = vec![
//!     StreamDescriptor::read("x", 0, 1, 128),
//!     StreamDescriptor::write("y", 1 << 20, 1, 128),
//! ];
//! let mut ctl = BaselineController::new(streams, map, baseline::LinePolicy::ClosedPage, 32);
//! let result = ctl.run_to_completion(&mut dev).expect("fault-free run");
//! assert!(result.last_data_cycle > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
mod controller;

pub use controller::{BaselineController, BaselineResult, LinePolicy, WritePolicy};
