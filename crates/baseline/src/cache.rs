//! A set-associative cache model for the conventional system.
//!
//! The paper's natural-order bounds assume every stream keeps its current
//! cacheline resident ("per-stream linefill buffers"), and it explicitly
//! leaves the cost of *cache conflicts* unmeasured: "using natural-order
//! cacheline accesses for these strides is likely to generate many cache
//! conflicts, because the vectors leave a larger footprint. Measuring the
//! negative performance impact of these conflicts is beyond the scope of
//! this study." This model measures it: a configurable set-associative
//! cache with LRU replacement, whose conflict misses turn into extra line
//! transfers in the [`BaselineController`](crate::BaselineController)
//! schedule.

use serde::{Deserialize, Serialize};

/// Configuration of the modeled data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
}

impl CacheConfig {
    /// The i860XP's 16 KB, 32-byte-line, 4-way data cache — the processor
    /// of the authors' proof-of-concept system.
    pub const fn i860xp() -> Self {
        CacheConfig {
            capacity_bytes: 16 * 1024,
            line_bytes: 32,
            ways: 4,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / self.line_bytes / self.ways as u64
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint: all fields must be
    /// positive, sizes powers of two, and the capacity divisible by
    /// `line_bytes x ways`.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 || self.line_bytes == 0 || self.ways == 0 {
            return Err("cache dimensions must be positive".into());
        }
        if !self.line_bytes.is_power_of_two() || !self.capacity_bytes.is_power_of_two() {
            return Err("cache and line sizes must be powers of two".into());
        }
        if !self
            .capacity_bytes
            .is_multiple_of(self.line_bytes * self.ways as u64)
        {
            return Err("capacity must divide evenly into sets".into());
        }
        if self.sets() == 0 {
            return Err("cache must have at least one set".into());
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::i860xp()
    }
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was resident.
    Hit,
    /// The line was absent; `evicted` carries the displaced dirty line's
    /// address when a writeback is owed.
    Miss {
        /// Dirty line displaced by the fill, if any.
        evicted_dirty: Option<u64>,
    },
}

/// A set-associative, write-allocate, LRU cache.
///
/// ```
/// use baseline::cache::{CacheConfig, CacheModel, CacheOutcome};
///
/// let mut c = CacheModel::new(CacheConfig::i860xp());
/// assert!(matches!(c.access(0, false), CacheOutcome::Miss { .. }));
/// assert_eq!(c.access(8, false), CacheOutcome::Hit); // same 32-byte line
/// ```
#[derive(Debug, Clone)]
pub struct CacheModel {
    cfg: CacheConfig,
    /// Per set: (line address, dirty), most recently used last.
    sets: Vec<Vec<(u64, bool)>>,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl CacheModel {
    /// Create an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CacheConfig) -> Self {
        let checked = cfg.validate();
        assert!(
            checked.is_ok(),
            "invalid cache configuration: {}",
            checked.unwrap_err()
        );
        CacheModel {
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets() as usize],
            cfg,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access the byte at `addr` (`store` marks the line dirty); returns
    /// whether the line was resident and any dirty eviction.
    pub fn access(&mut self, addr: u64, store: bool) -> CacheOutcome {
        let line = addr / self.cfg.line_bytes;
        let set_idx = (line % self.cfg.sets()) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (_, dirty) = set.remove(pos);
            set.push((line, dirty || store));
            self.hits += 1;
            return CacheOutcome::Hit;
        }
        self.misses += 1;
        let evicted_dirty = if set.len() == self.cfg.ways {
            let (victim, dirty) = set.remove(0);
            if dirty {
                self.writebacks += 1;
                Some(victim * self.cfg.line_bytes)
            } else {
                None
            }
        } else {
            None
        };
        set.push((line, store));
        CacheOutcome::Miss { evicted_dirty }
    }

    /// Lines still dirty in the cache (for final flushes), in no particular
    /// order.
    pub fn dirty_lines(&self) -> Vec<u64> {
        self.sets
            .iter()
            .flatten()
            .filter(|&&(_, dirty)| dirty)
            .map(|&(line, _)| line * self.cfg.line_bytes)
            .collect()
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions observed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss ratio in `[0, 1]`, or `None` before any access.
    pub fn miss_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            return None;
        }
        Some(self.misses as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheModel {
        // 4 sets x 2 ways x 32 B lines = 256 B.
        CacheModel::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 32,
            ways: 2,
        })
    }

    #[test]
    fn i860xp_geometry() {
        let cfg = CacheConfig::i860xp();
        cfg.validate().unwrap();
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    fn lru_evicts_the_oldest_way() {
        let mut c = tiny();
        // Three lines mapping to set 0 (multiples of 4 lines = 128 B).
        assert!(matches!(c.access(0, false), CacheOutcome::Miss { .. }));
        assert!(matches!(c.access(128, false), CacheOutcome::Miss { .. }));
        // Touch line 0 so line 128 becomes LRU.
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert!(matches!(c.access(256, false), CacheOutcome::Miss { .. }));
        // 128 was evicted; 0 survived.
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert!(matches!(c.access(128, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn dirty_evictions_report_writebacks() {
        let mut c = tiny();
        assert!(matches!(
            c.access(0, true),
            CacheOutcome::Miss {
                evicted_dirty: None
            }
        ));
        let _ = c.access(128, false);
        // Evicts dirty line 0.
        match c.access(256, false) {
            CacheOutcome::Miss {
                evicted_dirty: Some(addr),
            } => assert_eq!(addr, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn dirty_lines_enumerates_residents() {
        let mut c = tiny();
        let _ = c.access(0, true);
        let _ = c.access(32, false);
        let mut dirty = c.dirty_lines();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0]);
    }

    #[test]
    fn power_of_two_footprints_conflict() {
        // Stride of one full cache (256 B) maps every access to one set:
        // with 2 ways, 3 streams thrash.
        let mut c = tiny();
        let mut misses = 0;
        for i in 0..32u64 {
            for v in 0..3u64 {
                if matches!(
                    c.access(v * 256 + i * 768, false),
                    CacheOutcome::Miss { .. }
                ) {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 96, "every access conflicts");
        assert_eq!(c.miss_ratio(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn bad_geometry_rejected() {
        let _ = CacheModel::new(CacheConfig {
            capacity_bytes: 100,
            line_bytes: 32,
            ways: 1,
        });
    }
}
