//! Physical address interleaving: CLI (cacheline) and PI (page) mappings.
//!
//! The paper evaluates two extremes of the RDRAM address-mapping design
//! space:
//!
//! * **Cacheline interleaving (CLI)** — successive cachelines map to
//!   successive banks, so a unit-stride stream touches a different bank for
//!   every cacheline. Paired with a closed-page policy.
//! * **Page interleaving (PI)** — a bank holds one full DRAM page of
//!   consecutive addresses; crossing a page boundary means switching banks.
//!   Paired with an open-page policy.

use serde::{Deserialize, Serialize};

use crate::{DeviceConfig, PACKET_BYTES};

/// Where a physical byte address lands inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Bank index.
    pub bank: usize,
    /// Row (page) index within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub col: u64,
}

/// Interleaving scheme mapping physical addresses onto (bank, row, column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interleave {
    /// Cacheline interleaving: line `i` lives in bank `i mod banks`.
    Cacheline {
        /// Cacheline size in bytes (32 B = 4 words in the paper).
        line_bytes: u64,
    },
    /// Page interleaving: page `i` lives in bank `i mod banks`.
    Page,
}

/// A concrete address map for one device configuration.
///
/// ```
/// use rdram::{AddressMap, DeviceConfig, Interleave};
///
/// let cfg = DeviceConfig::default();
/// let cli = AddressMap::new(Interleave::Cacheline { line_bytes: 32 }, &cfg).unwrap();
/// // Consecutive 32-byte lines rotate across the 8 banks.
/// assert_eq!(cli.decode(0).bank, 0);
/// assert_eq!(cli.decode(32).bank, 1);
///
/// let pi = AddressMap::new(Interleave::Page, &cfg).unwrap();
/// // A full 1 KB page stays in one bank.
/// assert_eq!(pi.decode(0).bank, 0);
/// assert_eq!(pi.decode(1023).bank, 0);
/// assert_eq!(pi.decode(1024).bank, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressMap {
    interleave: Interleave,
    banks: usize,
    page_bytes: u64,
}

impl AddressMap {
    /// Create an address map for `cfg`.
    ///
    /// # Errors
    ///
    /// For [`Interleave::Cacheline`], the line size must be a non-zero
    /// multiple of the 16-byte packet and must divide the page size.
    pub fn new(interleave: Interleave, cfg: &DeviceConfig) -> Result<Self, String> {
        if let Interleave::Cacheline { line_bytes } = interleave {
            if line_bytes == 0 || line_bytes % PACKET_BYTES != 0 {
                return Err(format!(
                    "cacheline ({line_bytes} B) must be a non-zero multiple of \
                     the packet size ({PACKET_BYTES} B)"
                ));
            }
            if !cfg.page_bytes.is_multiple_of(line_bytes) {
                return Err(format!(
                    "page size ({} B) must be a multiple of the cacheline ({line_bytes} B)",
                    cfg.page_bytes
                ));
            }
        }
        Ok(AddressMap {
            interleave,
            banks: cfg.total_banks(),
            page_bytes: cfg.page_bytes,
        })
    }

    /// The interleaving scheme in use.
    pub fn interleave(&self) -> Interleave {
        self.interleave
    }

    /// Number of banks the map distributes addresses over.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Number of *contiguous* bytes mapped to a single bank before the map
    /// switches banks (the cacheline for CLI, the page for PI).
    pub fn contiguous_bytes_per_bank(&self) -> u64 {
        match self.interleave {
            Interleave::Cacheline { line_bytes } => line_bytes,
            Interleave::Page => self.page_bytes,
        }
    }

    /// Map a physical byte address to its (bank, row, column) location.
    pub fn decode(&self, addr: u64) -> Location {
        let banks = self.banks as u64;
        match self.interleave {
            Interleave::Cacheline { line_bytes } => {
                let line = addr / line_bytes;
                let bank = (line % banks) as usize;
                let line_in_bank = line / banks;
                let lines_per_page = self.page_bytes / line_bytes;
                let row = line_in_bank / lines_per_page;
                let col = (line_in_bank % lines_per_page) * line_bytes + addr % line_bytes;
                Location { bank, row, col }
            }
            Interleave::Page => {
                let page = addr / self.page_bytes;
                Location {
                    bank: (page % banks) as usize,
                    row: page / banks,
                    col: addr % self.page_bytes,
                }
            }
        }
    }

    /// Inverse of [`decode`](Self::decode): the physical byte address of a
    /// location.
    pub fn encode(&self, loc: Location) -> u64 {
        let banks = self.banks as u64;
        match self.interleave {
            Interleave::Cacheline { line_bytes } => {
                let lines_per_page = self.page_bytes / line_bytes;
                let line_in_bank = loc.row * lines_per_page + loc.col / line_bytes;
                let line = line_in_bank * banks + loc.bank as u64;
                line * line_bytes + loc.col % line_bytes
            }
            Interleave::Page => {
                let page = loc.row * banks + loc.bank as u64;
                page * self.page_bytes + loc.col % self.page_bytes
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli() -> AddressMap {
        AddressMap::new(
            Interleave::Cacheline { line_bytes: 32 },
            &DeviceConfig::default(),
        )
        .unwrap()
    }

    fn pi() -> AddressMap {
        AddressMap::new(Interleave::Page, &DeviceConfig::default()).unwrap()
    }

    #[test]
    fn cli_rotates_lines_across_banks() {
        let m = cli();
        for line in 0..32u64 {
            let loc = m.decode(line * 32);
            assert_eq!(loc.bank, (line % 8) as usize, "line {line}");
        }
    }

    #[test]
    fn cli_stacks_lines_into_pages_within_a_bank() {
        let m = cli();
        // Bank 0 receives lines 0, 8, 16, ... Its page holds 1024/32 = 32
        // lines, so line 8*32 = 256 (address 8192*...) starts row 1.
        let first_of_row1 = 32u64 * 8 * 32; // 32 lines/page * 8 banks * 32 B
        let loc = m.decode(first_of_row1);
        assert_eq!(loc.bank, 0);
        assert_eq!(loc.row, 1);
        assert_eq!(loc.col, 0);
    }

    #[test]
    fn pi_keeps_pages_in_one_bank() {
        let m = pi();
        let a = m.decode(5 * 1024 + 17);
        assert_eq!(a.bank, 5);
        assert_eq!(a.row, 0);
        assert_eq!(a.col, 17);
        let b = m.decode(8 * 1024);
        assert_eq!(b.bank, 0);
        assert_eq!(b.row, 1);
    }

    #[test]
    fn encode_is_inverse_of_decode() {
        for m in [cli(), pi()] {
            for addr in (0..1 << 16).step_by(8) {
                assert_eq!(m.encode(m.decode(addr)), addr, "map {m:?} addr {addr}");
            }
        }
    }

    #[test]
    fn contiguous_span() {
        assert_eq!(cli().contiguous_bytes_per_bank(), 32);
        assert_eq!(pi().contiguous_bytes_per_bank(), 1024);
    }

    #[test]
    fn rejects_bad_line_sizes() {
        let cfg = DeviceConfig::default();
        assert!(AddressMap::new(Interleave::Cacheline { line_bytes: 24 }, &cfg).is_err());
        assert!(AddressMap::new(Interleave::Cacheline { line_bytes: 0 }, &cfg).is_err());
        // A line larger than the page cannot divide it.
        assert!(AddressMap::new(Interleave::Cacheline { line_bytes: 2048 }, &cfg).is_err());
    }
}
