//! Hook for injected channel-level unavailability.
//!
//! The device model stays fault-agnostic: anything implementing
//! [`ChannelFaults`] can be attached with [`Rdram::set_faults`]
//! (`crate::Rdram::set_faults`), and the device folds the reported busy
//! windows into [`Rdram::earliest`](crate::Rdram::earliest). Controllers
//! that schedule with `earliest` then see injected faults as ordinary
//! timing pressure — no protocol errors, just delay — which is exactly how
//! a real channel experiences a throttled or refreshing device.
//!
//! The concrete implementation lives in the `faults` crate
//! (`FaultInjector`); the trait is defined here so `rdram` does not depend
//! on it.

use crate::Cycle;

/// Injected per-bank unavailability, queried by the device timing model.
///
/// Implementations must be deterministic pure functions of `(bank, t)` —
/// the device may query any cycle in any order, including re-querying the
/// past during `issue_at` validation.
pub trait ChannelFaults: std::fmt::Debug + Send + Sync {
    /// The first cycle `>= t` at which `bank` is free of injected
    /// unavailability.
    ///
    /// Must be monotone in `t` (`free_at(bank, a) <= free_at(bank, b)` for
    /// `a <= b`) and idempotent (`free_at(bank, free_at(bank, t)) ==
    /// free_at(bank, t)`). Returning [`Cycle::MAX`] models a permanently
    /// wedged bank; schedulers that gate on `earliest` then starve, which
    /// the controllers' watchdogs convert into a livelock error.
    fn free_at(&self, bank: usize, t: Cycle) -> Cycle;
}
