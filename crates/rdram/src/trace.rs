//! Packet-level tracing and ASCII timing-diagram rendering.
//!
//! When [`DeviceConfig::trace_enabled`](crate::DeviceConfig) is set, the
//! device records every ROW, COL, and DATA packet it schedules. The
//! [`render`] function lays the events out on three lanes — one per bus —
//! producing diagrams equivalent to the paper's Figures 5 and 6.

use serde::{Deserialize, Serialize};

use crate::{Cycle, Dir, Interval};

/// Which bus an event occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceUnit {
    /// The ROW command bus (ACT / PRER packets).
    RowBus,
    /// The COL command bus (RD / WR packets).
    ColBus,
    /// The DATA bus.
    DataBus,
}

/// What kind of packet the event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// ROW ACT packet opening `row` in `bank`.
    Activate {
        /// Target bank.
        bank: usize,
        /// Row being opened.
        row: u64,
    },
    /// ROW PRER packet closing `bank`.
    Precharge {
        /// Target bank.
        bank: usize,
    },
    /// Page closed via COL auto-precharge (no bus occupancy; recorded for
    /// diagnostics with a zero-width position on the ROW lane).
    AutoPrecharge {
        /// Target bank.
        bank: usize,
    },
    /// COL RD packet.
    ColRead {
        /// Target bank.
        bank: usize,
    },
    /// COL WR packet.
    ColWrite {
        /// Target bank.
        bank: usize,
    },
    /// A DATA packet moving in `dir`.
    Data {
        /// Transfer direction.
        dir: Dir,
        /// Bank supplying or absorbing the data.
        bank: usize,
    },
}

/// One recorded bus reservation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycles the packet occupied.
    pub interval: Interval,
    /// Bus the packet travelled on.
    pub unit: TraceUnit,
    /// Packet kind.
    pub kind: TraceKind,
    /// Optional controller-supplied annotation (e.g. `"ld x[0]"`).
    pub label: Option<String>,
}

impl TraceEvent {
    fn glyph(&self) -> char {
        match self.kind {
            TraceKind::Activate { .. } => 'A',
            TraceKind::Precharge { .. } => 'P',
            TraceKind::AutoPrecharge { .. } => 'p',
            TraceKind::ColRead { .. } => 'R',
            TraceKind::ColWrite { .. } => 'W',
            TraceKind::Data { dir: Dir::Read, .. } => 'r',
            TraceKind::Data {
                dir: Dir::Write, ..
            } => 'w',
        }
    }

    fn describe(&self) -> String {
        let base = match self.kind {
            TraceKind::Activate { bank, row } => format!("ACT  b{bank} r{row}"),
            TraceKind::Precharge { bank } => format!("PRER b{bank}"),
            TraceKind::AutoPrecharge { bank } => format!("PREX b{bank}"),
            TraceKind::ColRead { bank } => format!("RD   b{bank}"),
            TraceKind::ColWrite { bank } => format!("WR   b{bank}"),
            TraceKind::Data {
                dir: Dir::Read,
                bank,
            } => format!("data<- b{bank}"),
            TraceKind::Data {
                dir: Dir::Write,
                bank,
            } => format!("data-> b{bank}"),
        };
        match &self.label {
            Some(l) => format!("{base}  {l}"),
            None => base,
        }
    }
}

/// A recorded sequence of bus events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in issue order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Attach `label` to the most recently recorded event group.
    ///
    /// A command and the DATA packet it produces are recorded together, so
    /// labelling applies to every trailing event sharing the last event's
    /// issue batch id is unnecessary — the device labels at issue time
    /// instead. This helper labels only the final event.
    pub fn label_last(&mut self, label: &str) {
        if let Some(e) = self.events.last_mut() {
            e.label = Some(label.to_string());
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Last cycle covered by any event.
    pub fn end_cycle(&self) -> Cycle {
        self.events
            .iter()
            .map(|e| e.interval.end)
            .max()
            .unwrap_or(0)
    }
}

/// Render a trace as an ASCII timing diagram.
///
/// One lane per bus; each column is one interface-clock cycle. ROW-lane
/// glyphs: `A` (activate), `P` (precharge); COL lane: `R`/`W`; DATA lane:
/// `r`/`w`. An event list with labels follows the lanes. `from`/`to` bound
/// the rendered window in cycles.
pub fn render(trace: &Trace, from: Cycle, to: Cycle) -> String {
    assert!(to > from, "empty render window");
    let width = (to - from) as usize;
    let mut lanes = [
        vec!['.'; width], // ROW
        vec!['.'; width], // COL
        vec!['.'; width], // DATA
    ];
    for e in trace.events() {
        let lane = match e.unit {
            TraceUnit::RowBus => &mut lanes[0],
            TraceUnit::ColBus => &mut lanes[1],
            TraceUnit::DataBus => &mut lanes[2],
        };
        let g = e.glyph();
        for c in e.interval.start.max(from)..e.interval.end.min(to) {
            lane[(c - from) as usize] = g;
        }
    }
    let mut out = String::new();
    let ruler: String = (0..width)
        .map(|i| {
            let cyc = from + i as Cycle;
            if cyc.is_multiple_of(10) {
                '|'
            } else {
                ' '
            }
        })
        .collect();
    out.push_str(&format!("cycle {from:>5} {ruler}\n"));
    for (name, lane) in ["ROW ", "COL ", "DATA"].iter().zip(&lanes) {
        out.push_str(&format!(
            "{name}        {}\n",
            lane.iter().collect::<String>()
        ));
    }
    out.push('\n');
    for e in trace.events() {
        if e.interval.start >= from && e.interval.start < to {
            out.push_str(&format!(
                "  [{:>5}, {:>5})  {}\n",
                e.interval.start,
                e.interval.end,
                e.describe()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(start: Cycle, unit: TraceUnit, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            interval: Interval::with_len(start, 4),
            unit,
            kind,
            label: None,
        }
    }

    #[test]
    fn render_places_glyphs() {
        let mut t = Trace::new();
        t.push(event(
            0,
            TraceUnit::RowBus,
            TraceKind::Activate { bank: 0, row: 1 },
        ));
        t.push(event(12, TraceUnit::ColBus, TraceKind::ColRead { bank: 0 }));
        t.push(event(
            22,
            TraceUnit::DataBus,
            TraceKind::Data {
                dir: Dir::Read,
                bank: 0,
            },
        ));
        let s = render(&t, 0, 30);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("AAAA"));
        assert!(lines[2].contains("RRRR"));
        assert!(lines[3].contains("rrrr"));
        assert!(s.contains("ACT  b0 r1"));
    }

    #[test]
    fn labels_appear_in_listing() {
        let mut t = Trace::new();
        t.push(event(0, TraceUnit::ColBus, TraceKind::ColWrite { bank: 2 }));
        t.label_last("st z[0]");
        let s = render(&t, 0, 8);
        assert!(s.contains("st z[0]"));
        assert!(s.contains("WR   b2"));
    }

    #[test]
    fn end_cycle_tracks_latest_event() {
        let mut t = Trace::new();
        assert_eq!(t.end_cycle(), 0);
        assert!(t.is_empty());
        t.push(event(
            40,
            TraceUnit::DataBus,
            TraceKind::Data {
                dir: Dir::Write,
                bank: 1,
            },
        ));
        assert_eq!(t.end_cycle(), 44);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty render window")]
    fn render_rejects_empty_window() {
        let _ = render(&Trace::new(), 5, 5);
    }
}
