//! Observation hooks for the command stream a controller issues.
//!
//! The packet-level [`trace`](crate::trace) module records bus occupancy for
//! rendering timing diagrams; this module records the *commands themselves*
//! so external tools — most importantly the `checker` crate's
//! timing-conformance analyzer — can replay and audit the schedule. Every
//! successful [`Rdram::issue_at`](crate::Rdram::issue_at) call reports a
//! [`CommandRecord`] to the attached sink, so MSU-scheduled, baseline,
//! speculative, and refresh commands are all observable through one hook.

use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::{Command, Cycle};

/// One issued command, stamped with the cycle its packet started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommandRecord {
    /// Cycle at which the command packet began on its bus.
    pub cycle: Cycle,
    /// The command that was issued.
    pub cmd: Command,
}

/// Receiver for issued commands.
///
/// Implementations must be cheap: the device calls
/// [`record_command`](TraceSink::record_command) on every issued command.
pub trait TraceSink {
    /// Observe one successfully issued command.
    fn record_command(&mut self, rec: CommandRecord);
}

/// A growable in-memory command trace; the standard [`TraceSink`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandTrace {
    records: Vec<CommandRecord>,
}

impl CommandTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded commands, in issue order (not necessarily sorted by
    /// cycle: refresh maintenance may commit commands at future cycles).
    pub fn records(&self) -> &[CommandRecord] {
        &self.records
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Consume the trace, yielding the raw records.
    pub fn into_records(self) -> Vec<CommandRecord> {
        self.records
    }
}

impl TraceSink for CommandTrace {
    fn record_command(&mut self, rec: CommandRecord) {
        self.records.push(rec);
    }
}

/// A cloneable, shareable handle to a [`TraceSink`].
///
/// The device, the controller that drives it, and the harness that later
/// reads the trace all need access to one sink; this wraps it in
/// `Arc<Mutex<..>>` so a single [`CommandTrace`] can be observed from all
/// three places. Locking is poison-tolerant: a panic elsewhere never turns
/// trace recording into a second panic.
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<dyn TraceSink + Send>>);

impl SharedSink {
    /// Wrap a sink for sharing.
    pub fn new<S: TraceSink + Send + 'static>(sink: S) -> Self {
        SharedSink(Arc::new(Mutex::new(sink)))
    }

    /// Share an existing `Arc<Mutex<CommandTrace>>` (the common case: the
    /// harness keeps one handle to read the trace back after the run).
    pub fn from_trace(trace: Arc<Mutex<CommandTrace>>) -> Self {
        SharedSink(trace)
    }

    /// Forward one record to the underlying sink.
    pub fn record_command(&self, rec: CommandRecord) {
        let mut guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.record_command(rec);
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSink(..)")
    }
}

/// Drain a shared [`CommandTrace`] handle, returning the records collected
/// so far and leaving the trace empty.
pub fn drain_trace(trace: &Arc<Mutex<CommandTrace>>) -> Vec<CommandRecord> {
    let mut guard = match trace.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    std::mem::take(&mut *guard).into_records()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_trace_collects_in_order() {
        let mut trace = CommandTrace::new();
        assert!(trace.is_empty());
        trace.record_command(CommandRecord {
            cycle: 4,
            cmd: Command::activate(0, 1),
        });
        trace.record_command(CommandRecord {
            cycle: 0,
            cmd: Command::read(0, 0),
        });
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.records()[0].cycle, 4);
        assert_eq!(trace.records()[1].cycle, 0);
    }

    #[test]
    fn shared_sink_feeds_one_underlying_trace() {
        let trace = Arc::new(Mutex::new(CommandTrace::new()));
        let sink = SharedSink::from_trace(Arc::clone(&trace));
        let clone = sink.clone();
        sink.record_command(CommandRecord {
            cycle: 1,
            cmd: Command::precharge(3),
        });
        clone.record_command(CommandRecord {
            cycle: 2,
            cmd: Command::activate(3, 7),
        });
        assert_eq!(drain_trace(&trace).len(), 2);
        assert!(drain_trace(&trace).is_empty());
    }

    #[test]
    fn records_round_trip_through_serde() {
        let rec = CommandRecord {
            cycle: 42,
            cmd: Command::write(5, 16).with_auto_precharge(),
        };
        let json = serde_json::to_string(&rec).expect("serializes");
        // The vendored serde deserializes into untyped values only; the
        // typed reader lives in the `checker` crate's trace-file parser.
        let back = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, serde_json::to_value(&rec).expect("to_value"));
        assert_eq!(back["cycle"].as_u64(), Some(42));
    }
}
