//! The Direct RDRAM device timing model.

use std::sync::Arc;

use crate::sink::{CommandRecord, SharedSink};
use crate::trace::{Trace, TraceEvent, TraceKind, TraceUnit};
use crate::{
    Bank, Bus, ChannelFaults, ColOp, Command, Cycle, DataBus, DeviceConfig, DeviceStats, Dir,
    Interval, Location, ProtocolError, RowOp, SenseAmps, Timing,
};

/// Result of issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Outcome {
    /// Cycles the command packet occupied its command bus.
    pub cmd_packet: Interval,
    /// For COL commands, the cycles the DATA packet occupies the data bus.
    /// Read data is *valid at* `data.start`; write data must be driven then.
    pub data: Option<Interval>,
}

/// What a controller must do before a column access can reach `loc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessPlan {
    /// An open, different row must be precharged first.
    pub needs_precharge: bool,
    /// The target row must be activated first.
    pub needs_activate: bool,
}

impl AccessPlan {
    /// The access hits the open page (no ROW commands needed).
    pub fn is_page_hit(&self) -> bool {
        !self.needs_precharge && !self.needs_activate
    }
}

/// The two-phase command interface shared by a single device and any
/// aggregate that routes commands to devices (the `memsys` crate's
/// multi-channel `MemorySystem`): ask [`earliest`](CommandPort::earliest)
/// when a command could legally start, commit it with
/// [`issue_at`](CommandPort::issue_at), and query row state and timing.
///
/// Scheduler-side helpers that drive "a memory" without caring whether it
/// is one chip or N channels — the refresh timer, most prominently — are
/// generic over this trait.
pub trait CommandPort {
    /// Earliest cycle `>= now` at which `cmd` may start.
    fn earliest(&self, cmd: &Command, now: Cycle) -> Cycle;

    /// Issue `cmd` with its packet starting at cycle `start`.
    ///
    /// # Errors
    ///
    /// A [`ProtocolError`] when `start` is illegal or the bank state does
    /// not admit the command.
    fn issue_at(&mut self, cmd: &Command, start: Cycle) -> Result<Outcome, ProtocolError>;

    /// The row currently open in `bank`, if any.
    fn open_row(&self, bank: usize) -> Option<u64>;

    /// The timing parameters commands are scheduled under.
    fn timing(&self) -> &Timing;
}

impl CommandPort for Rdram {
    fn earliest(&self, cmd: &Command, now: Cycle) -> Cycle {
        Rdram::earliest(self, cmd, now)
    }

    fn issue_at(&mut self, cmd: &Command, start: Cycle) -> Result<Outcome, ProtocolError> {
        Rdram::issue_at(self, cmd, start)
    }

    fn open_row(&self, bank: usize) -> Option<u64> {
        Rdram::open_row(self, bank)
    }

    fn timing(&self) -> &Timing {
        Rdram::timing(self)
    }
}

/// A single Direct RDRAM device.
///
/// The device exposes a two-phase protocol to its (single) memory
/// controller: [`earliest`](Rdram::earliest) computes the first cycle at
/// which a command could legally start, and [`issue_at`](Rdram::issue_at)
/// commits it, reserving bus time and updating bank state. Every timing rule
/// of the paper's Figure 2 is enforced at issue time, so a controller bug
/// surfaces as a [`ProtocolError`] rather than silently optimistic results.
///
/// See the [crate-level documentation](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct Rdram {
    cfg: DeviceConfig,
    banks: Vec<Bank>,
    row_bus: Bus,
    col_bus: Bus,
    data_bus: DataBus,
    /// Start of the most recent ACT per device (`tRR` is a per-device rule).
    last_act_dev: Vec<Option<Cycle>>,
    stats: DeviceStats,
    trace: Option<Trace>,
    next_label: Option<String>,
    /// Injected unavailability; folded into `earliest` when attached.
    faults: Option<Arc<dyn ChannelFaults>>,
    /// Observer for every successfully issued command (conformance audits).
    cmd_sink: Option<SharedSink>,
}

impl Rdram {
    /// Create a device from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DeviceConfig::validate`]; device
    /// construction happens once at simulation setup, where an invalid
    /// configuration is unrecoverable.
    pub fn new(cfg: DeviceConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid device configuration: {e}");
        }
        let trace = cfg.trace_enabled.then(Trace::new);
        Rdram {
            banks: vec![Bank::new(); cfg.total_banks()],
            row_bus: Bus::new(),
            col_bus: Bus::new(),
            data_bus: DataBus::new(),
            last_act_dev: vec![None; cfg.devices],
            stats: DeviceStats::default(),
            trace,
            next_label: None,
            faults: None,
            cmd_sink: None,
            cfg,
        }
    }

    /// Attach a command sink; every command accepted by
    /// [`issue_at`](Rdram::issue_at) from this point on is reported to it.
    pub fn set_cmd_sink(&mut self, sink: SharedSink) {
        self.cmd_sink = Some(sink);
    }

    /// Detach the command sink, if any.
    pub fn clear_cmd_sink(&mut self) {
        self.cmd_sink = None;
    }

    /// Whether a command sink is currently attached.
    pub fn has_cmd_sink(&self) -> bool {
        self.cmd_sink.is_some()
    }

    /// Attach an injected-fault model; its busy windows are folded into
    /// [`earliest`](Rdram::earliest) from this point on.
    pub fn set_faults(&mut self, faults: Arc<dyn ChannelFaults>) {
        self.faults = Some(faults);
    }

    /// Detach any injected-fault model.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The device's timing parameters.
    pub fn timing(&self) -> &Timing {
        &self.cfg.timing
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Per-bank state (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        self.banks.get(bank).and_then(Bank::open_row)
    }

    /// The DATA bus (for turnaround and utilization inspection).
    pub fn data_bus(&self) -> &DataBus {
        &self.data_bus
    }

    /// The recorded packet trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Take ownership of the recorded trace, leaving an empty one in place.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.as_mut().map(std::mem::take)
    }

    /// Attach a label (e.g. `"ld x[0]"`) to the events of the next issued
    /// command. Labels appear in rendered timing diagrams.
    pub fn set_label(&mut self, label: impl Into<String>) {
        if self.trace.is_some() {
            self.next_label = Some(label.into());
        }
    }

    /// What ROW work is needed before a COL access can reach `loc`.
    pub fn plan(&self, loc: Location) -> AccessPlan {
        match self.banks[loc.bank].amps() {
            SenseAmps::Open { row } if row == loc.row => AccessPlan {
                needs_precharge: false,
                needs_activate: false,
            },
            SenseAmps::Open { .. } => AccessPlan {
                needs_precharge: true,
                needs_activate: true,
            },
            SenseAmps::Closed => AccessPlan {
                needs_precharge: false,
                needs_activate: true,
            },
        }
    }

    /// Check that `bank` currently holds `row`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BankClosed`] if no row is open, or
    /// [`ProtocolError::WrongOpenRow`] if a different row is open.
    pub fn expect_open_row(&self, bank: usize, row: u64) -> Result<(), ProtocolError> {
        match self.banks[bank].amps() {
            SenseAmps::Open { row: r } if r == row => Ok(()),
            SenseAmps::Open { row: r } => Err(ProtocolError::WrongOpenRow { bank, open_row: r }),
            SenseAmps::Closed => Err(ProtocolError::BankClosed { bank }),
        }
    }

    /// Earliest cycle `>= now` at which `cmd` may start.
    ///
    /// This considers timing constraints only; *state* preconditions (the
    /// bank being open/closed as required) are validated by
    /// [`issue_at`](Rdram::issue_at). Calling `earliest` for a command whose
    /// state preconditions do not hold returns a cycle at which the command
    /// would still be rejected.
    pub fn earliest(&self, cmd: &Command, now: Cycle) -> Cycle {
        let t = &self.cfg.timing;
        let base = match cmd {
            Command::Row(RowOp::Activate { bank, .. }) => {
                let b = &self.banks[*bank];
                let trr = self.last_act_dev[self.device_of(*bank)]
                    .map_or(0, |a| a.saturating_add(t.t_rr));
                now.max(self.row_bus.next_free())
                    .max(b.earliest_activate(t))
                    .max(trr)
            }
            Command::Row(RowOp::Precharge { bank }) => now
                .max(self.row_bus.next_free())
                .max(self.banks[*bank].earliest_precharge(t)),
            Command::Col { op, .. } => {
                let b = &self.banks[op.bank()];
                let dir = op.dir();
                let data_delay = match dir {
                    Dir::Read => t.read_data_delay(),
                    Dir::Write => t.write_data_delay(),
                };
                // The COL packet must leave enough room for its DATA packet
                // to clear the data-bus constraints (occupancy + turnaround).
                let data_bound = self.data_bus.earliest(dir, t).saturating_sub(data_delay);
                now.max(self.col_bus.next_free())
                    .max(b.earliest_col())
                    .max(data_bound)
            }
        };
        match &self.faults {
            Some(f) => f.free_at(cmd.bank(), base),
            None => base,
        }
    }

    /// Issue `cmd` with its packet starting at cycle `start`.
    ///
    /// Returns the bus reservations made. `start` is typically the value
    /// returned by [`earliest`](Rdram::earliest); any later legal cycle is
    /// also accepted.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::NoSuchBank`] — bank index out of range.
    /// * [`ProtocolError::TooEarly`] — `start` violates a timing rule.
    /// * [`ProtocolError::BankAlreadyOpen`] — ACT to an open bank.
    /// * [`ProtocolError::AdjacentBankOpen`] — double-bank conflict.
    /// * [`ProtocolError::BankClosed`] — COL or PRER to a closed bank.
    pub fn issue_at(&mut self, cmd: &Command, start: Cycle) -> Result<Outcome, ProtocolError> {
        let outcome = self.issue_at_inner(cmd, start)?;
        if let Some(sink) = &self.cmd_sink {
            sink.record_command(CommandRecord {
                cycle: start,
                cmd: *cmd,
            });
        }
        Ok(outcome)
    }

    fn issue_at_inner(&mut self, cmd: &Command, start: Cycle) -> Result<Outcome, ProtocolError> {
        let bank = cmd.bank();
        if bank >= self.banks.len() {
            return Err(ProtocolError::NoSuchBank {
                bank,
                banks: self.banks.len(),
            });
        }
        let earliest = self.earliest(cmd, 0);
        if start < earliest {
            return Err(ProtocolError::TooEarly {
                cmd: *cmd,
                requested: start,
                earliest,
            });
        }
        let t = self.cfg.timing;
        let label = self.next_label.take();
        match cmd {
            Command::Row(RowOp::Activate { bank, row }) => {
                if let SenseAmps::Open { row: open } = self.banks[*bank].amps() {
                    return Err(ProtocolError::BankAlreadyOpen {
                        bank: *bank,
                        open_row: open,
                    });
                }
                if self.cfg.double_bank {
                    let neighbour = bank ^ 1;
                    if neighbour < self.banks.len()
                        && matches!(self.banks[neighbour].amps(), SenseAmps::Open { .. })
                    {
                        return Err(ProtocolError::AdjacentBankOpen {
                            bank: *bank,
                            neighbour,
                        });
                    }
                }
                let packet = Interval::with_len(start, t.t_pack);
                self.row_bus.reserve(packet);
                self.banks[*bank].record_activate(start, *row, &t);
                let dev = self.device_of(*bank);
                self.last_act_dev[dev] = Some(start);
                self.stats.activates += 1;
                self.record(TraceEvent {
                    interval: packet,
                    unit: TraceUnit::RowBus,
                    kind: TraceKind::Activate {
                        bank: *bank,
                        row: *row,
                    },
                    label,
                });
                Ok(Outcome {
                    cmd_packet: packet,
                    data: None,
                })
            }
            Command::Row(RowOp::Precharge { bank }) => {
                if self.banks[*bank].open_row().is_none() {
                    return Err(ProtocolError::BankClosed { bank: *bank });
                }
                let packet = Interval::with_len(start, t.t_pack);
                self.row_bus.reserve(packet);
                self.banks[*bank].record_precharge(start, &t);
                self.stats.precharges += 1;
                self.record(TraceEvent {
                    interval: packet,
                    unit: TraceUnit::RowBus,
                    kind: TraceKind::Precharge { bank: *bank },
                    label,
                });
                Ok(Outcome {
                    cmd_packet: packet,
                    data: None,
                })
            }
            Command::Col { op, auto_precharge } => {
                if self.banks[op.bank()].open_row().is_none() {
                    return Err(ProtocolError::BankClosed { bank: op.bank() });
                }
                Ok(self.issue_col(*op, *auto_precharge, start, label))
            }
        }
    }

    fn issue_col(
        &mut self,
        op: ColOp,
        auto_precharge: bool,
        start: Cycle,
        label: Option<String>,
    ) -> Outcome {
        let t = self.cfg.timing;
        let bank = op.bank();
        let dir = op.dir();
        let packet = Interval::with_len(start, t.t_pack);
        let data_delay = match dir {
            Dir::Read => t.read_data_delay(),
            Dir::Write => t.write_data_delay(),
        };
        let data = Interval::with_len(start.saturating_add(data_delay), t.t_pack);

        self.col_bus.reserve(packet);
        self.data_bus.reserve(data, dir, &t);
        let is_hit = self.banks[bank].cols_since_act() > 0;
        self.banks[bank].record_col(packet);
        match dir {
            Dir::Read => {
                self.stats.read_packets += 1;
                if is_hit {
                    self.stats.read_hits += 1;
                }
            }
            Dir::Write => {
                self.stats.write_packets += 1;
                if is_hit {
                    self.stats.write_hits += 1;
                }
            }
        }
        self.stats.turnarounds = self.data_bus.turnarounds();
        self.stats.data_busy_cycles += data.len();

        let col_kind = match dir {
            Dir::Read => TraceKind::ColRead { bank },
            Dir::Write => TraceKind::ColWrite { bank },
        };
        self.record(TraceEvent {
            interval: packet,
            unit: TraceUnit::ColBus,
            kind: col_kind,
            label: label.clone(),
        });
        self.record(TraceEvent {
            interval: data,
            unit: TraceUnit::DataBus,
            kind: TraceKind::Data { dir, bank },
            label,
        });

        if auto_precharge {
            // The PREX field of the COLX packet closes the page without
            // occupying the ROW bus; the precharge begins at the earliest
            // legal cycle after this access.
            let p = self.banks[bank].earliest_precharge(&t).max(start);
            self.banks[bank].record_precharge(p, &t);
            self.stats.auto_precharges += 1;
            self.record(TraceEvent {
                interval: Interval::with_len(p, t.t_rp),
                unit: TraceUnit::RowBus,
                kind: TraceKind::AutoPrecharge { bank },
                label: None,
            });
        }

        Outcome {
            cmd_packet: packet,
            data: Some(data),
        }
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(event);
        }
    }

    /// Which channel device a channel-wide bank index belongs to.
    fn device_of(&self, bank: usize) -> usize {
        bank / self.cfg.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Rdram {
        Rdram::new(DeviceConfig::default())
    }

    fn issue(dev: &mut Rdram, cmd: Command, now: Cycle) -> (Cycle, Outcome) {
        let s = dev.earliest(&cmd, now);
        let o = dev.issue_at(&cmd, s).expect("legal command");
        (s, o)
    }

    #[test]
    fn page_miss_read_latency_is_trac_plus_trdly() {
        let mut dev = device();
        let (t_act, _) = issue(&mut dev, Command::activate(0, 0), 0);
        assert_eq!(t_act, 0);
        let (t_col, o) = issue(&mut dev, Command::read(0, 0), 0);
        // COL gated by tRCD + 1.
        assert_eq!(t_col, 12);
        // Data valid at ACT + tRAC + tRDLY = 22.
        assert_eq!(o.data.unwrap().start, 22);
    }

    #[test]
    fn page_hit_reads_stream_at_packet_rate() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        let mut last_data_start = 0;
        for i in 0..4 {
            let (_, o) = issue(&mut dev, Command::read(0, i * 16), 0);
            let d = o.data.unwrap();
            if i > 0 {
                assert_eq!(d.start - last_data_start, 4, "packet {i} not back-to-back");
            }
            last_data_start = d.start;
        }
        assert_eq!(dev.stats().read_packets, 4);
        assert_eq!(dev.stats().read_hits, 3);
        assert_eq!(dev.stats().page_hit_rate(), Some(0.75));
    }

    #[test]
    fn trr_separates_acts_to_different_banks() {
        let mut dev = device();
        let (a0, _) = issue(&mut dev, Command::activate(0, 0), 0);
        let (a1, _) = issue(&mut dev, Command::activate(1, 0), 0);
        assert_eq!(a1 - a0, dev.timing().t_rr);
    }

    #[test]
    fn trc_separates_acts_to_same_bank() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        issue(&mut dev, Command::precharge(0), 0);
        let cmd = Command::activate(0, 1);
        let s = dev.earliest(&cmd, 0);
        assert_eq!(s, dev.timing().t_rc);
        dev.issue_at(&cmd, s).unwrap();
    }

    #[test]
    fn act_to_open_bank_is_rejected() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        let cmd = Command::activate(0, 1);
        let s = dev.earliest(&cmd, 0);
        let err = dev.issue_at(&cmd, s).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::BankAlreadyOpen {
                bank: 0,
                open_row: 0
            }
        ));
    }

    #[test]
    fn col_to_closed_bank_is_rejected() {
        let mut dev = device();
        let cmd = Command::read(2, 0);
        let err = dev.issue_at(&cmd, dev.earliest(&cmd, 0)).unwrap_err();
        assert!(matches!(err, ProtocolError::BankClosed { bank: 2 }));
    }

    #[test]
    fn too_early_is_rejected_with_earliest() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        let cmd = Command::read(0, 0);
        let err = dev.issue_at(&cmd, 5).unwrap_err();
        match err {
            ProtocolError::TooEarly {
                earliest,
                requested,
                ..
            } => {
                assert_eq!(requested, 5);
                assert_eq!(earliest, 12);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn no_such_bank() {
        let mut dev = device();
        let err = dev.issue_at(&Command::activate(8, 0), 0).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::NoSuchBank { bank: 8, banks: 8 }
        ));
    }

    #[test]
    fn write_then_read_pays_turnaround() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        let (_, wo) = issue(&mut dev, Command::write(0, 0), 0);
        let wdata = wo.data.unwrap();
        let (_, ro) = issue(&mut dev, Command::read(0, 16), 0);
        let rdata = ro.data.unwrap();
        assert_eq!(rdata.start - wdata.end, dev.timing().t_rw);
        assert_eq!(dev.stats().turnarounds, 1);
    }

    #[test]
    fn read_then_write_is_gapless() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        let (_, ro) = issue(&mut dev, Command::read(0, 0), 0);
        let (_, wo) = issue(&mut dev, Command::write(0, 16), 0);
        assert_eq!(wo.data.unwrap().start, ro.data.unwrap().end);
        assert_eq!(dev.stats().turnarounds, 0);
    }

    #[test]
    fn auto_precharge_closes_page_and_gates_next_act() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        let cmd = Command::read(0, 0).with_auto_precharge();
        let (s, _) = issue(&mut dev, cmd, 0);
        assert_eq!(dev.open_row(0), None);
        assert_eq!(dev.stats().auto_precharges, 1);
        // Precharge starts at max(tRAS after ACT, COL end - tCPOL) = 15;
        // next ACT is gated by tRC (34) from the first ACT, not by tRP.
        let next = Command::activate(0, 1);
        let e = dev.earliest(&next, 0);
        assert_eq!(e, dev.timing().t_rc);
        let _ = s;
    }

    #[test]
    fn plan_reflects_bank_state() {
        let mut dev = device();
        let loc = Location {
            bank: 0,
            row: 0,
            col: 0,
        };
        assert_eq!(
            dev.plan(loc),
            AccessPlan {
                needs_precharge: false,
                needs_activate: true
            }
        );
        issue(&mut dev, Command::activate(0, 0), 0);
        assert!(dev.plan(loc).is_page_hit());
        let other = Location {
            bank: 0,
            row: 1,
            col: 0,
        };
        assert_eq!(
            dev.plan(other),
            AccessPlan {
                needs_precharge: true,
                needs_activate: true
            }
        );
    }

    #[test]
    fn expect_open_row_diagnoses_state() {
        let mut dev = device();
        assert!(matches!(
            dev.expect_open_row(0, 0),
            Err(ProtocolError::BankClosed { bank: 0 })
        ));
        issue(&mut dev, Command::activate(0, 3), 0);
        assert!(dev.expect_open_row(0, 3).is_ok());
        assert!(matches!(
            dev.expect_open_row(0, 4),
            Err(ProtocolError::WrongOpenRow {
                bank: 0,
                open_row: 3
            })
        ));
    }

    #[test]
    fn double_bank_adjacency_is_enforced() {
        let cfg = DeviceConfig {
            double_bank: true,
            ..DeviceConfig::default()
        };
        let mut dev = Rdram::new(cfg);
        issue(&mut dev, Command::activate(0, 0), 0);
        let cmd = Command::activate(1, 0);
        let s = dev.earliest(&cmd, 0);
        let err = dev.issue_at(&cmd, s).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::AdjacentBankOpen {
                bank: 1,
                neighbour: 0
            }
        ));
        // Bank 2 is in a different pair and activates fine.
        issue(&mut dev, Command::activate(2, 0), 0);
    }

    #[test]
    fn issuing_later_than_earliest_is_accepted() {
        let mut dev = device();
        let act = Command::activate(0, 0);
        let e = dev.earliest(&act, 0);
        dev.issue_at(&act, e + 7).unwrap();
        let col = Command::read(0, 0);
        let e = dev.earliest(&col, 0);
        let o = dev.issue_at(&col, e + 3).unwrap();
        // Data still tracks the actual COL start, not the earliest.
        assert_eq!(
            o.data.unwrap().start,
            e + 3 + dev.timing().read_data_delay()
        );
    }

    #[test]
    fn earliest_never_precedes_now() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        for now in [0u64, 5, 100, 10_000] {
            for cmd in [
                Command::read(0, 0),
                Command::activate(1, 0),
                Command::precharge(0),
            ] {
                assert!(dev.earliest(&cmd, now) >= now, "{cmd:?} at {now}");
            }
        }
    }

    #[test]
    fn writes_to_different_banks_pipeline_then_turnaround_once() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        issue(&mut dev, Command::activate(1, 0), 0);
        // Start after both banks' tRCD windows so the COL packets are
        // data-bus-limited rather than activation-limited.
        let (_, w0) = issue(&mut dev, Command::write(0, 0), 20);
        let (_, w1) = issue(&mut dev, Command::write(1, 0), 20);
        // Back-to-back write data across banks.
        assert_eq!(w1.data.unwrap().start, w0.data.unwrap().end);
        let (_, r) = issue(&mut dev, Command::read(0, 16), 0);
        assert_eq!(
            r.data.unwrap().start - w1.data.unwrap().end,
            dev.timing().t_rw
        );
        assert_eq!(dev.stats().turnarounds, 1);
    }

    #[test]
    fn explicit_precharge_can_overlap_last_col_by_tcpol() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        let (c, _) = issue(&mut dev, Command::read(0, 0), 0);
        // The PRER may start tCPOL before the COL packet ends.
        let pre = Command::precharge(0);
        let e = dev.earliest(&pre, 0);
        assert_eq!(e, c + dev.timing().t_pack - dev.timing().t_cpol);
        dev.issue_at(&pre, e).unwrap();
    }

    #[test]
    fn trace_records_when_enabled() {
        let cfg = DeviceConfig {
            trace_enabled: true,
            ..DeviceConfig::default()
        };
        let mut dev = Rdram::new(cfg);
        dev.set_label("ld x[0]");
        issue(&mut dev, Command::activate(0, 0), 0);
        issue(&mut dev, Command::read(0, 0), 0);
        let trace = dev.trace().unwrap();
        assert_eq!(trace.len(), 3); // ACT + COL + DATA
        assert_eq!(trace.events()[0].label.as_deref(), Some("ld x[0]"));
        let taken = dev.take_trace().unwrap();
        assert_eq!(taken.len(), 3);
        assert!(dev.trace().unwrap().is_empty());
    }

    #[test]
    fn trace_absent_when_disabled() {
        let mut dev = device();
        issue(&mut dev, Command::activate(0, 0), 0);
        assert!(dev.trace().is_none());
        assert!(dev.take_trace().is_none());
    }

    #[test]
    #[should_panic(expected = "invalid device configuration")]
    fn invalid_config_panics() {
        let _ = Rdram::new(DeviceConfig {
            banks: 0,
            ..DeviceConfig::default()
        });
    }

    #[test]
    fn trr_applies_per_device_on_a_multi_device_channel() {
        let cfg = DeviceConfig {
            devices: 2,
            ..DeviceConfig::default()
        };
        let mut dev = Rdram::new(cfg);
        // Bank 0 lives on device 0, bank 8 on device 1: their ACTs are not
        // tRR-coupled, only serialized by the shared ROW bus (tPACK).
        let (a0, _) = issue(&mut dev, Command::activate(0, 0), 0);
        let (a1, _) = issue(&mut dev, Command::activate(8, 0), 0);
        assert_eq!(a1 - a0, dev.timing().t_pack);
        // A second ACT on device 0 still waits the full tRR.
        let (a2, _) = issue(&mut dev, Command::activate(1, 0), 0);
        assert_eq!(a2, a0 + dev.timing().t_rr);
    }

    #[test]
    fn channel_has_devices_times_banks() {
        let cfg = DeviceConfig {
            devices: 4,
            ..DeviceConfig::default()
        };
        assert_eq!(cfg.total_banks(), 32);
        let mut dev = Rdram::new(cfg);
        issue(&mut dev, Command::activate(31, 0), 0);
        let err = dev.issue_at(&Command::activate(32, 0), 0).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::NoSuchBank {
                bank: 32,
                banks: 32
            }
        ));
    }
}
