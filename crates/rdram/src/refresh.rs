//! DRAM refresh scheduling.
//!
//! The paper's models ignore refresh ("refresh delays … are ignored, since
//! they can be overlapped with accesses to other banks"), which is accurate
//! to within a percent or two: a 64 Mbit Direct RDRAM refreshes each of its
//! rows once per 64 ms window, and a refresh is just an ACT/PRER pair the
//! controller interleaves with regular traffic. This module provides the
//! bookkeeping a controller needs to honour that obligation, so the claim
//! can be *measured* instead of assumed (see the refresh ablation).

use serde::{Deserialize, Serialize};

use crate::{Command, CommandPort, Cycle, DeviceConfig, ProtocolError};

/// Tracks when rows fall due for refresh and walks banks/rows round-robin.
///
/// With the default 64 ms retention window, a device with `rows x banks`
/// rows must issue one refresh every `64 ms / (rows x banks)`; at 400 MHz
/// and the default geometry that is one refresh about every 3125 cycles.
///
/// ```
/// use rdram::{refresh::RefreshTimer, DeviceConfig};
///
/// let cfg = DeviceConfig::default();
/// let mut timer = RefreshTimer::new(&cfg);
/// assert!(!timer.due(0));
/// let interval = timer.interval();
/// assert!(timer.due(interval));
/// let (bank, row) = timer.take(interval);
/// assert_eq!((bank, row), (0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RefreshTimer {
    interval: Cycle,
    next_due: Cycle,
    bank: usize,
    row: u64,
    banks: usize,
    rows: u64,
    issued: u64,
}

/// 64 ms retention window in interface-clock cycles (2.5 ns each).
pub const RETENTION_CYCLES: Cycle = 25_600_000;

impl RefreshTimer {
    /// A timer for the given device geometry, spreading the retention
    /// window evenly over all rows of the channel.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &DeviceConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid device configuration: {e}"));
        let total_rows = cfg.total_banks() as u64 * cfg.rows_per_bank;
        let interval = (RETENTION_CYCLES / total_rows).max(1);
        RefreshTimer {
            interval,
            next_due: interval,
            bank: 0,
            row: 0,
            banks: cfg.total_banks(),
            rows: cfg.rows_per_bank,
            issued: 0,
        }
    }

    /// Cycles between successive refresh obligations.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// Whether a refresh is due at `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_due
    }

    /// Refreshes performed so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The (bank, row) the next refresh will target, without claiming it.
    pub fn peek(&self) -> (usize, u64) {
        (self.bank, self.row)
    }

    /// Claim the due refresh, returning the (bank, row) to refresh and
    /// scheduling the next obligation. Banks rotate fastest so consecutive
    /// refreshes land on different banks and overlap with other traffic.
    ///
    /// # Panics
    ///
    /// Panics if no refresh is due (check [`due`](Self::due) first).
    pub fn take(&mut self, now: Cycle) -> (usize, u64) {
        assert!(self.due(now), "no refresh due at cycle {now}");
        let target = (self.bank, self.row);
        self.bank += 1;
        if self.bank == self.banks {
            self.bank = 0;
            self.row = (self.row + 1) % self.rows;
        }
        self.next_due += self.interval;
        self.issued += 1;
        target
    }

    /// Perform the due refresh on `dev` as an ACT/PRER pair, starting no
    /// earlier than `now`. Returns the cycle after which the bank is usable
    /// again. The bank must be closed (the controller precharges it first
    /// if its page is open).
    ///
    /// `dev` is anything implementing [`CommandPort`] — a single
    /// [`Rdram`](crate::Rdram) device or a multi-channel aggregate whose
    /// bank space this timer was built over.
    ///
    /// # Errors
    ///
    /// Propagates the device's [`ProtocolError`] if the bank is busy in a
    /// way that makes the ACT illegal (e.g. open sense amps).
    pub fn refresh_now<D: CommandPort>(
        &mut self,
        dev: &mut D,
        now: Cycle,
    ) -> Result<Cycle, ProtocolError> {
        let (bank, row) = self.take(now);
        if dev.open_row(bank).is_some() {
            let pre = Command::precharge(bank);
            let t = dev.earliest(&pre, now);
            dev.issue_at(&pre, t)?;
        }
        let act = Command::activate(bank, row);
        let t = dev.earliest(&act, now);
        dev.issue_at(&act, t)?;
        let pre = Command::precharge(bank);
        let t2 = dev.earliest(&pre, t);
        dev.issue_at(&pre, t2)?;
        Ok(t2 + dev.timing().t_rp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rdram;

    #[test]
    fn interval_spreads_retention_over_all_rows() {
        let cfg = DeviceConfig::default();
        let t = RefreshTimer::new(&cfg);
        // 8 banks x 1024 rows = 8192 rows over 25.6M cycles.
        assert_eq!(t.interval(), RETENTION_CYCLES / 8192);
    }

    #[test]
    fn banks_rotate_fastest() {
        let cfg = DeviceConfig::default();
        let mut t = RefreshTimer::new(&cfg);
        let mut now = t.interval();
        let mut seen = Vec::new();
        for _ in 0..9 {
            seen.push(t.take(now));
            now += t.interval();
        }
        assert_eq!(seen[0], (0, 0));
        assert_eq!(seen[7], (7, 0));
        assert_eq!(seen[8], (0, 1));
        assert_eq!(t.issued(), 9);
    }

    #[test]
    fn refresh_now_cycles_a_closed_bank() {
        let cfg = DeviceConfig::default();
        let mut dev = Rdram::new(cfg.clone());
        let mut t = RefreshTimer::new(&cfg);
        let now = t.interval();
        let done = t.refresh_now(&mut dev, now).unwrap();
        // ACT at `now`, PRER tRAS later, ready tRP after that.
        assert_eq!(done, now + 8 + 10);
        assert_eq!(dev.stats().activates, 1);
        assert_eq!(dev.stats().precharges, 1);
    }

    #[test]
    fn refresh_now_closes_an_open_bank_first() {
        let cfg = DeviceConfig::default();
        let mut dev = Rdram::new(cfg.clone());
        let act = Command::activate(0, 5);
        dev.issue_at(&act, 0).unwrap();
        let mut t = RefreshTimer::new(&cfg);
        let now = t.interval();
        let _ = t.refresh_now(&mut dev, now).unwrap();
        assert_eq!(dev.stats().precharges, 2);
        assert_eq!(dev.open_row(0), None);
    }

    #[test]
    #[should_panic(expected = "no refresh due")]
    fn take_requires_due() {
        let cfg = DeviceConfig::default();
        let mut t = RefreshTimer::new(&cfg);
        let _ = t.take(0);
    }
}
