//! Packet buses: serialized command channels and the turnaround-sensitive
//! DATA bus.

use serde::{Deserialize, Serialize};

use crate::{Cycle, Dir, Interval, Timing};

/// A simple packet bus (ROW or COL command channel).
///
/// One packet occupies the bus at a time; reservations must be issued in
/// non-decreasing order of start cycle (the device is the only driver and
/// schedules monotonically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Bus {
    next_free: Cycle,
    busy_cycles: Cycle,
}

impl Bus {
    /// A bus that is free from cycle 0.
    pub fn new() -> Self {
        Bus::default()
    }

    /// First cycle at which a new packet may start.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles the bus has carried packets.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Reserve the bus for `packet`.
    ///
    /// # Panics
    ///
    /// Panics if the packet overlaps an earlier reservation; the device only
    /// issues at cycles it has itself validated, so an overlap is a bug.
    pub fn reserve(&mut self, packet: Interval) {
        assert!(
            packet.start >= self.next_free,
            "bus overlap: packet starts at {} but bus is busy until {}",
            packet.start,
            self.next_free
        );
        self.next_free = packet.end;
        self.busy_cycles += packet.len();
    }
}

/// The DATA bus: a packet bus that also enforces the write-to-read
/// turnaround delay `tRW`.
///
/// Per the paper, switching the bus from write back to read costs
/// `tRW = tPACK + tRDLY` (the retire packet plus the round-trip bus delay);
/// switching from read to write costs nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DataBus {
    inner: Bus,
    last_dir: Option<Dir>,
    turnarounds: u64,
    read_packets: u64,
    write_packets: u64,
}

impl DataBus {
    /// A data bus that is free from cycle 0.
    pub fn new() -> Self {
        DataBus::default()
    }

    /// First cycle at which a transfer in direction `dir` may start.
    pub fn earliest(&self, dir: Dir, t: &Timing) -> Cycle {
        let free = self.inner.next_free();
        match (self.last_dir, dir) {
            // Write data followed by read data: insert the turnaround gap.
            // `next_free` is the end of the write packet, so the gap is
            // measured from there.
            (Some(Dir::Write), Dir::Read) => free.saturating_add(t.t_rw),
            (Some(Dir::Write), Dir::Write)
            | (Some(Dir::Read), Dir::Read | Dir::Write)
            | (None, Dir::Read | Dir::Write) => free,
        }
    }

    /// Reserve the bus for a transfer in direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `packet` starts before [`earliest`](Self::earliest) allows.
    pub fn reserve(&mut self, packet: Interval, dir: Dir, t: &Timing) {
        assert!(
            packet.start >= self.earliest(dir, t),
            "data bus turnaround violation: {dir:?} packet at {} but earliest is {}",
            packet.start,
            self.earliest(dir, t)
        );
        if self.last_dir == Some(Dir::Write) && dir == Dir::Read {
            self.turnarounds += 1;
        }
        match dir {
            Dir::Read => self.read_packets += 1,
            Dir::Write => self.write_packets += 1,
        }
        self.inner.reserve(packet);
        self.last_dir = Some(dir);
    }

    /// First cycle at which any transfer may start, ignoring direction.
    pub fn next_free(&self) -> Cycle {
        self.inner.next_free()
    }

    /// Total cycles the bus has carried data.
    pub fn busy_cycles(&self) -> Cycle {
        self.inner.busy_cycles()
    }

    /// Number of write-to-read direction switches so far.
    pub fn turnarounds(&self) -> u64 {
        self.turnarounds
    }

    /// Number of read DATA packets transferred.
    pub fn read_packets(&self) -> u64 {
        self.read_packets
    }

    /// Number of write DATA packets transferred.
    pub fn write_packets(&self) -> u64 {
        self.write_packets
    }

    /// Direction of the most recent transfer.
    pub fn last_dir(&self) -> Option<Dir> {
        self.last_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timing {
        Timing::default()
    }

    #[test]
    fn bus_serializes_packets() {
        let mut bus = Bus::new();
        bus.reserve(Interval::with_len(0, 4));
        assert_eq!(bus.next_free(), 4);
        bus.reserve(Interval::with_len(10, 4));
        assert_eq!(bus.next_free(), 14);
        assert_eq!(bus.busy_cycles(), 8);
    }

    #[test]
    #[should_panic(expected = "bus overlap")]
    fn bus_rejects_overlap() {
        let mut bus = Bus::new();
        bus.reserve(Interval::with_len(0, 4));
        bus.reserve(Interval::with_len(2, 4));
    }

    #[test]
    fn back_to_back_reads_have_no_gap() {
        let mut d = DataBus::new();
        d.reserve(Interval::with_len(0, 4), Dir::Read, &t());
        assert_eq!(d.earliest(Dir::Read, &t()), 4);
        d.reserve(Interval::with_len(4, 4), Dir::Read, &t());
        assert_eq!(d.turnarounds(), 0);
        assert_eq!(d.read_packets(), 2);
    }

    #[test]
    fn write_to_read_costs_trw() {
        let mut d = DataBus::new();
        d.reserve(Interval::with_len(0, 4), Dir::Write, &t());
        assert_eq!(d.earliest(Dir::Read, &t()), 4 + 6);
        d.reserve(Interval::with_len(10, 4), Dir::Read, &t());
        assert_eq!(d.turnarounds(), 1);
    }

    #[test]
    fn read_to_write_is_free() {
        let mut d = DataBus::new();
        d.reserve(Interval::with_len(0, 4), Dir::Read, &t());
        assert_eq!(d.earliest(Dir::Write, &t()), 4);
        d.reserve(Interval::with_len(4, 4), Dir::Write, &t());
        assert_eq!(d.turnarounds(), 0);
    }

    #[test]
    #[should_panic(expected = "turnaround violation")]
    fn turnaround_violation_panics() {
        let mut d = DataBus::new();
        d.reserve(Interval::with_len(0, 4), Dir::Write, &t());
        d.reserve(Interval::with_len(5, 4), Dir::Read, &t());
    }
}
