//! Device-level configuration: geometry, timing, and policy knobs.

use serde::{Deserialize, Serialize};

use crate::{Timing, PACKET_BYTES};

/// Configuration of a Direct RDRAM device.
///
/// The default reproduces the memory system the paper evaluates: a single
/// 64 Mbit part with eight independent banks and 1 KB pages, using the
/// -800/-50 timing of Figure 2.
///
/// ```
/// use rdram::DeviceConfig;
///
/// let cfg = DeviceConfig::default();
/// assert_eq!(cfg.banks, 8);
/// assert_eq!(cfg.page_bytes, 1024);
/// assert_eq!(cfg.capacity_bytes(), 8 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Timing parameters (see [`Timing`]).
    pub timing: Timing,
    /// Number of RDRAM devices ganged on the channel. The paper models one;
    /// a Direct Rambus channel supports up to 32, and `tRR` (the row-packet
    /// spacing) applies *per device*, so more devices expose more row
    /// concurrency — the reason Crisp reports ~95% efficiency on multimedia
    /// workloads with many devices while a single chip cannot get there.
    pub devices: usize,
    /// Number of independent banks per device. The paper models eight;
    /// "double bank" 16-bank parts are effectively eight because adjacent
    /// banks conflict.
    pub banks: usize,
    /// DRAM page (row) size in bytes. 1 KB = 128 64-bit words (`L_P`).
    pub page_bytes: u64,
    /// Rows per bank. Only bounds the address space; it does not affect
    /// timing.
    pub rows_per_bank: u64,
    /// Model the "double bank" adjacency constraint of 16-bank cores, where
    /// two adjacent banks share sense amps and cannot be open simultaneously.
    pub double_bank: bool,
    /// Record a packet-level trace of every bus reservation (needed to
    /// regenerate the paper's Figures 5 and 6; off by default because traces
    /// grow with every issued command).
    pub trace_enabled: bool,
}

impl DeviceConfig {
    /// Total addressable capacity in bytes across all devices.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank * self.page_bytes
    }

    /// Banks on the whole channel (`devices x banks`). Address maps and the
    /// `Rdram` model index banks channel-wide; bank `i` belongs to device
    /// `i / banks`.
    pub fn total_banks(&self) -> usize {
        self.devices * self.banks
    }

    /// 64-bit words per DRAM page (`L_P` in the paper's equations).
    pub fn words_per_page(&self) -> u64 {
        self.page_bytes / crate::ELEM_BYTES
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: timing must
    /// validate, there must be at least one bank and one row, and the page
    /// size must be a non-zero multiple of the 16-byte DATA packet.
    pub fn validate(&self) -> Result<(), String> {
        self.timing.validate()?;
        if self.devices == 0 {
            return Err("the channel needs at least one device".into());
        }
        if self.banks == 0 {
            return Err("device must have at least one bank".into());
        }
        if self.rows_per_bank == 0 {
            return Err("device must have at least one row per bank".into());
        }
        if self.page_bytes == 0 || !self.page_bytes.is_multiple_of(PACKET_BYTES) {
            return Err(format!(
                "page size ({} B) must be a non-zero multiple of the packet size ({} B)",
                self.page_bytes, PACKET_BYTES
            ));
        }
        if self.double_bank && !self.banks.is_multiple_of(2) {
            return Err("double-bank devices need an even bank count".into());
        }
        Ok(())
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            timing: Timing::default(),
            devices: 1,
            banks: 8,
            page_bytes: 1024,
            rows_per_bank: 1024,
            double_bank: false,
            trace_enabled: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_device() {
        let cfg = DeviceConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.words_per_page(), 128);
        assert!(!cfg.double_bank);
    }

    #[test]
    fn rejects_zero_banks() {
        let cfg = DeviceConfig {
            banks: 0,
            ..DeviceConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("bank"));
    }

    #[test]
    fn rejects_unaligned_page() {
        let cfg = DeviceConfig {
            page_bytes: 1000,
            ..DeviceConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("page size"));
    }

    #[test]
    fn rejects_odd_double_bank() {
        let cfg = DeviceConfig {
            banks: 7,
            double_bank: true,
            ..DeviceConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("even"));
    }

    #[test]
    fn capacity() {
        let cfg = DeviceConfig::default();
        assert_eq!(cfg.capacity_bytes(), 8 * 1024 * 1024);
    }
}
