//! Byte-accurate backing store, so simulations move real data.
//!
//! The timing model ([`Rdram`](crate::Rdram)) is pure timing; controllers
//! pair it with a `MemoryImage` to actually transport bytes. Keeping the two
//! separate lets timing tests run without allocating storage and lets the
//! end-to-end kernel tests verify that access *reordering* never changes
//! computation *results*.

use std::collections::BTreeMap;

use crate::ELEM_BYTES;

const CHUNK_BYTES: u64 = 4096;

/// A sparse, byte-addressable memory image.
///
/// Pages are allocated lazily in 4 KB chunks; unwritten memory reads as
/// zero. Convenience accessors exist for the 64-bit stream elements the
/// paper's kernels operate on.
///
/// ```
/// use rdram::MemoryImage;
///
/// let mut mem = MemoryImage::new();
/// mem.write_u64(64, 3.25_f64.to_bits());
/// assert_eq!(f64::from_bits(mem.read_u64(64)), 3.25);
/// assert_eq!(mem.read_u64(128), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    chunks: BTreeMap<u64, Box<[u8; CHUNK_BYTES as usize]>>,
}

impl MemoryImage {
    /// An empty (all-zero) image.
    pub fn new() -> Self {
        MemoryImage::default()
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_byte(addr + i as u64);
        }
    }

    /// Write `buf` starting at `addr`.
    pub fn write(&mut self, addr: u64, buf: &[u8]) {
        for (i, &b) in buf.iter().enumerate() {
            self.write_byte(addr + i as u64, b);
        }
    }

    /// Read one byte.
    pub fn read_byte(&self, addr: u64) -> u8 {
        match self.chunks.get(&(addr / CHUNK_BYTES)) {
            Some(chunk) => chunk[(addr % CHUNK_BYTES) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_byte(&mut self, addr: u64, value: u8) {
        let chunk = self
            .chunks
            .entry(addr / CHUNK_BYTES)
            .or_insert_with(|| Box::new([0u8; CHUNK_BYTES as usize]));
        chunk[(addr % CHUNK_BYTES) as usize] = value;
    }

    /// Read a little-endian 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned; the paper's streams are always
    /// composed of aligned 64-bit elements, so a misaligned access is a bug.
    pub fn read_u64(&self, addr: u64) -> u64 {
        assert_eq!(addr % ELEM_BYTES, 0, "unaligned element read at {addr:#x}");
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Write a little-endian 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        assert_eq!(addr % ELEM_BYTES, 0, "unaligned element write at {addr:#x}");
        self.write(addr, &value.to_le_bytes());
    }

    /// Read an `f64` stream element.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an `f64` stream element.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Number of 4 KB chunks currently allocated.
    pub fn allocated_chunks(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = MemoryImage::new();
        assert_eq!(mem.read_byte(12345), 0);
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.allocated_chunks(), 0);
    }

    #[test]
    fn round_trips_bytes_across_chunk_boundaries() {
        let mut mem = MemoryImage::new();
        let addr = CHUNK_BYTES - 3;
        mem.write(addr, &[1, 2, 3, 4, 5, 6]);
        let mut buf = [0u8; 6];
        mem.read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
        assert_eq!(mem.allocated_chunks(), 2);
    }

    #[test]
    fn element_round_trip() {
        let mut mem = MemoryImage::new();
        mem.write_f64(4096, -0.5);
        assert_eq!(mem.read_f64(4096), -0.5);
        mem.write_u64(8, u64::MAX);
        assert_eq!(mem.read_u64(8), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_element_access_panics() {
        let mem = MemoryImage::new();
        let _ = mem.read_u64(12);
    }
}
