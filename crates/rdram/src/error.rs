//! Protocol errors reported by the device model.

use std::error::Error;
use std::fmt;

use crate::{Command, Cycle};

/// A memory controller attempted an illegal command sequence.
///
/// The device validates every [`Command`](crate::Command) against the
/// Direct RDRAM protocol; a violation indicates a controller bug, and the
/// error carries enough context to diagnose it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The command started before the timing constraints allow.
    TooEarly {
        /// The offending command.
        cmd: Command,
        /// The requested start cycle.
        requested: Cycle,
        /// The earliest legal start cycle.
        earliest: Cycle,
    },
    /// ACT issued to a bank whose sense amps already hold a row.
    BankAlreadyOpen {
        /// Target bank.
        bank: usize,
        /// The row currently held.
        open_row: u64,
    },
    /// COL or PRER issued to a bank with no open row.
    BankClosed {
        /// Target bank.
        bank: usize,
    },
    /// COL issued for a row other than the one the bank holds.
    WrongOpenRow {
        /// Target bank.
        bank: usize,
        /// The row currently held.
        open_row: u64,
    },
    /// The command addressed a bank the device does not have.
    NoSuchBank {
        /// Requested bank.
        bank: usize,
        /// Banks present on the device.
        banks: usize,
    },
    /// ACT would open a bank adjacent to an open bank on a double-bank core.
    AdjacentBankOpen {
        /// The bank being activated.
        bank: usize,
        /// The open neighbour that conflicts with it.
        neighbour: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TooEarly { cmd, requested, earliest } => write!(
                f,
                "command {cmd:?} requested at cycle {requested} but earliest legal start is {earliest}"
            ),
            ProtocolError::BankAlreadyOpen { bank, open_row } => {
                write!(f, "bank {bank} already holds row {open_row}; precharge first")
            }
            ProtocolError::BankClosed { bank } => {
                write!(f, "bank {bank} has no open row")
            }
            ProtocolError::WrongOpenRow { bank, open_row } => {
                write!(f, "bank {bank} holds row {open_row}, not the requested row")
            }
            ProtocolError::NoSuchBank { bank, banks } => {
                write!(f, "bank {bank} does not exist on a {banks}-bank device")
            }
            ProtocolError::AdjacentBankOpen { bank, neighbour } => write!(
                f,
                "double-bank conflict: bank {bank} shares sense amps with open bank {neighbour}"
            ),
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::TooEarly {
            cmd: Command::read(0, 0),
            requested: 5,
            earliest: 12,
        };
        let s = e.to_string();
        assert!(s.contains("cycle 5"));
        assert!(s.contains("12"));

        let e = ProtocolError::NoSuchBank { bank: 9, banks: 8 };
        assert!(e.to_string().contains("bank 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
