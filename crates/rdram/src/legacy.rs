//! Conventional DRAM timing catalogue (the paper's Figure 1) and a small
//! functional fast-page-mode DRAM model.
//!
//! The paper frames Direct RDRAM against the DRAMs of its day: fast-page
//! mode (FPM), Extended Data Out (EDO), Burst-EDO, and SDRAM. This module
//! reproduces the Figure 1 parameter table and provides a bus-occupancy
//! model of a fast-page-mode memory system — the substrate of the authors'
//! earlier SMC hardware — so the crate can contrast the two asymptotic
//! regimes identified in Section 5.2: FPM SMC performance is limited by DRAM
//! *page misses*, while Direct RDRAM SMC performance is limited by bus
//! *turnaround*.

use serde::{Deserialize, Serialize};

/// Timing parameters of a conventional (pre-Rambus) DRAM, in nanoseconds.
///
/// Row `tPC` is the page-mode cycle time: the bank-occupancy cost of a
/// page-hit access. For the Direct RDRAM column of Figure 1, the packet
/// transfer time (10 ns) plays this role.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConventionalTiming {
    /// Device family name as printed in Figure 1.
    pub name: &'static str,
    /// Row-access time, ns.
    pub t_rac_ns: f64,
    /// Column-access time, ns.
    pub t_cac_ns: f64,
    /// Random read/write cycle time, ns.
    pub t_rc_ns: f64,
    /// Page-mode cycle time, ns.
    pub t_pc_ns: f64,
    /// Maximum interface frequency, MHz.
    pub max_freq_mhz: f64,
}

/// The five columns of the paper's Figure 1.
pub const FIGURE_1: [ConventionalTiming; 5] = [
    ConventionalTiming {
        name: "Fast-Page Mode",
        t_rac_ns: 50.0,
        t_cac_ns: 13.0,
        t_rc_ns: 95.0,
        t_pc_ns: 30.0,
        max_freq_mhz: 33.0,
    },
    ConventionalTiming {
        name: "EDO",
        t_rac_ns: 50.0,
        t_cac_ns: 13.0,
        t_rc_ns: 89.0,
        t_pc_ns: 20.0,
        max_freq_mhz: 50.0,
    },
    ConventionalTiming {
        name: "Burst-EDO",
        t_rac_ns: 52.0,
        t_cac_ns: 10.0,
        t_rc_ns: 90.0,
        t_pc_ns: 15.0,
        max_freq_mhz: 66.0,
    },
    ConventionalTiming {
        name: "SDRAM",
        t_rac_ns: 50.0,
        t_cac_ns: 9.0,
        t_rc_ns: 100.0,
        t_pc_ns: 10.0,
        max_freq_mhz: 100.0,
    },
    ConventionalTiming {
        name: "Direct RDRAM",
        t_rac_ns: 50.0,
        t_cac_ns: 20.0,
        t_rc_ns: 85.0,
        t_pc_ns: 10.0, // packet transfer time; tPC does not apply
        max_freq_mhz: 400.0,
    },
];

/// One generation of the Rambus DRAM family (the paper's Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdramGeneration {
    /// Generation name.
    pub name: &'static str,
    /// External data-bus width in bits.
    pub bus_bits: u32,
    /// External clock in MHz (data moves on both edges).
    pub clock_mhz: f64,
    /// Peak bandwidth in MB/s.
    pub peak_mbytes_per_sec: f64,
    /// Whether the protocol supports multiple concurrent transactions.
    pub concurrent_transactions: bool,
}

/// The three Rambus generations the paper describes: Base (500–600 MB/s),
/// Concurrent (same peak, better utilization), and Direct (1.6 GB/s).
pub const RDRAM_GENERATIONS: [RdramGeneration; 3] = [
    RdramGeneration {
        name: "Base RDRAM",
        bus_bits: 8,
        clock_mhz: 250.0,
        peak_mbytes_per_sec: 500.0,
        concurrent_transactions: false,
    },
    RdramGeneration {
        name: "Concurrent RDRAM",
        bus_bits: 8,
        clock_mhz: 300.0,
        peak_mbytes_per_sec: 600.0,
        concurrent_transactions: true,
    },
    RdramGeneration {
        name: "Direct RDRAM",
        bus_bits: 16,
        clock_mhz: 400.0,
        peak_mbytes_per_sec: 1600.0,
        concurrent_transactions: true,
    },
];

/// A functional model of a fast-page-mode DRAM memory system, timed in
/// nanoseconds.
///
/// This is deliberately simple — the level of detail of the paper's
/// *analytic* treatment of its earlier FPM SMC: a page-hit access occupies
/// the memory for `tPC`, a page miss for `tRC`, and there is no inter-bank
/// pipelining within one simple controller (matching the authors'
/// proof-of-concept system with interleaved banks driven in lockstep).
///
/// ```
/// use rdram::legacy::FpmDram;
///
/// let mut fpm = FpmDram::new(2, 1024, 8); // 2 banks, 1KB pages, 8B words
/// let first = fpm.access(0, 0.0);     // bank 0: page miss
/// let second = fpm.access(16, first); // bank 0 again, same page: hit
/// assert!(second - first < first);
/// ```
#[derive(Debug, Clone)]
pub struct FpmDram {
    timing: ConventionalTiming,
    banks: usize,
    page_bytes: u64,
    word_bytes: u64,
    open_pages: Vec<Option<u64>>,
    page_hits: u64,
    page_misses: u64,
}

impl FpmDram {
    /// Create a fast-page-mode memory with `banks` banks of `page_bytes`
    /// pages, interleaved at `word_bytes` granularity (word interleaving, as
    /// in the authors' i860 system).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(banks: usize, page_bytes: u64, word_bytes: u64) -> Self {
        assert!(banks > 0 && page_bytes > 0 && word_bytes > 0);
        FpmDram {
            timing: FIGURE_1[0],
            banks,
            page_bytes,
            word_bytes,
            open_pages: vec![None; banks],
            page_hits: 0,
            page_misses: 0,
        }
    }

    /// The FPM timing parameters in use.
    pub fn timing(&self) -> &ConventionalTiming {
        &self.timing
    }

    /// Perform a word access at byte address `addr`, not before `now` (ns).
    /// Returns the completion time in ns.
    pub fn access(&mut self, addr: u64, now: f64) -> f64 {
        let word = addr / self.word_bytes;
        let bank = (word % self.banks as u64) as usize;
        let page = addr / (self.page_bytes * self.banks as u64);
        if self.open_pages[bank] == Some(page) {
            self.page_hits += 1;
            now + self.timing.t_pc_ns
        } else {
            self.open_pages[bank] = Some(page);
            self.page_misses += 1;
            now + self.timing.t_rc_ns
        }
    }

    /// Page hits observed so far.
    pub fn page_hits(&self) -> u64 {
        self.page_hits
    }

    /// Page misses observed so far.
    pub fn page_misses(&self) -> u64 {
        self.page_misses
    }

    /// Asymptotic effective bandwidth (bytes/ns) of a stream whose accesses
    /// hit the page buffer with probability `hit_rate`.
    pub fn stream_bandwidth(&self, hit_rate: f64) -> f64 {
        assert!((0.0..=1.0).contains(&hit_rate), "hit rate must be in [0,1]");
        let t = hit_rate * self.timing.t_pc_ns + (1.0 - hit_rate) * self.timing.t_rc_ns;
        self.word_bytes as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_matches_the_paper() {
        assert_eq!(FIGURE_1.len(), 5);
        let fpm = &FIGURE_1[0];
        assert_eq!(fpm.t_rac_ns, 50.0);
        assert_eq!(fpm.t_pc_ns, 30.0);
        let rdram = &FIGURE_1[4];
        assert_eq!(rdram.name, "Direct RDRAM");
        assert_eq!(rdram.t_cac_ns, 20.0);
        assert_eq!(rdram.t_rc_ns, 85.0);
        assert_eq!(rdram.max_freq_mhz, 400.0);
    }

    #[test]
    fn generations_match_the_papers_section_2_2() {
        assert_eq!(RDRAM_GENERATIONS.len(), 3);
        let direct = &RDRAM_GENERATIONS[2];
        // 16 bits on both edges of 400 MHz = 1.6 GB/s.
        assert_eq!(
            direct.peak_mbytes_per_sec,
            2.0 * direct.clock_mhz * (direct.bus_bits as f64 / 8.0)
        );
        assert!(!RDRAM_GENERATIONS[0].concurrent_transactions);
        assert!(RDRAM_GENERATIONS[1].concurrent_transactions);
    }

    #[test]
    fn hits_are_cheaper_than_misses() {
        let mut fpm = FpmDram::new(2, 1024, 8);
        let t1 = fpm.access(0, 0.0);
        assert_eq!(t1, 95.0); // miss
        let t2 = fpm.access(8, t1); // bank 1: miss
        assert_eq!(t2 - t1, 95.0);
        let t3 = fpm.access(16, t2); // bank 0 again, same page: hit
        assert_eq!(t3 - t2, 30.0);
        assert_eq!(fpm.page_hits(), 1);
        assert_eq!(fpm.page_misses(), 2);
    }

    #[test]
    fn stream_bandwidth_interpolates() {
        let fpm = FpmDram::new(2, 1024, 8);
        let all_hits = fpm.stream_bandwidth(1.0);
        let all_misses = fpm.stream_bandwidth(0.0);
        assert!(all_hits > all_misses);
        assert!((all_hits - 8.0 / 30.0).abs() < 1e-12);
        assert!((all_misses - 8.0 / 95.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hit rate")]
    fn bandwidth_rejects_bad_hit_rate() {
        let _ = FpmDram::new(2, 1024, 8).stream_bandwidth(1.5);
    }
}
