//! Per-bank sense-amp state and timing bookkeeping.

use serde::{Deserialize, Serialize};

use crate::{Cycle, Interval, Timing};

/// State of a bank's sense amplifiers (its row buffer / "page cache").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SenseAmps {
    /// The sense amps are precharged (or precharging) and hold no row.
    Closed,
    /// The sense amps hold `row` and column accesses may proceed.
    Open {
        /// The currently open row.
        row: u64,
    },
}

/// Timing state of one RDRAM bank.
///
/// A bank tracks when it was last activated, whether a row is open, and the
/// earliest cycles at which the next ACT, COL, or PRER may start. All
/// `earliest_*` methods return lower bounds from *this bank's* perspective;
/// the device combines them with bus availability and device-wide rules
/// (`tRR`, turnaround).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bank {
    amps: SenseAmps,
    /// Start cycle of the most recent ACT, if any.
    last_act: Option<Cycle>,
    /// Earliest cycle an ACT may start (precharge completion).
    ready_for_act: Cycle,
    /// Earliest cycle a COL packet to the open row may start.
    col_allowed: Cycle,
    /// Most recent COL packet interval to this bank, if any.
    last_col: Option<Interval>,
    /// COL packets issued since the last ACT (0 means the next COL is the
    /// page-miss access itself; later ones are page hits).
    cols_since_act: u64,
}

impl Bank {
    /// A fresh, precharged bank.
    pub fn new() -> Self {
        Bank {
            amps: SenseAmps::Closed,
            last_act: None,
            ready_for_act: 0,
            col_allowed: 0,
            last_col: None,
            cols_since_act: 0,
        }
    }

    /// Current sense-amp state.
    pub fn amps(&self) -> SenseAmps {
        self.amps
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        match self.amps {
            SenseAmps::Open { row } => Some(row),
            SenseAmps::Closed => None,
        }
    }

    /// Start cycle of the most recent ACT to this bank.
    pub fn last_act(&self) -> Option<Cycle> {
        self.last_act
    }

    /// Earliest cycle at which an ACT to this bank may start: the bank must
    /// be precharged (`tRP` after the PRER) and `tRC` must have elapsed since
    /// its previous ACT.
    ///
    /// The bank must be [`SenseAmps::Closed`]; activating an open bank is a
    /// protocol error the device reports separately.
    pub fn earliest_activate(&self, t: &Timing) -> Cycle {
        let trc_bound = self.last_act.map_or(0, |a| a.saturating_add(t.t_rc));
        self.ready_for_act.max(trc_bound)
    }

    /// Earliest cycle a COL packet to the open row may start
    /// (`ACT + tRCD + 1`; the `+1` reproduces the paper's
    /// `tRAC = tRCD + tCAC + 1` page-miss latency). Also serialized after the
    /// previous COL packet to this bank.
    pub fn earliest_col(&self) -> Cycle {
        let after_prev = self.last_col.map_or(0, |c| c.end);
        self.col_allowed.max(after_prev)
    }

    /// Earliest cycle a PRER to this bank may start: `tRAS` after the ACT
    /// that opened the row, and overlapping the final COL packet by at most
    /// `tCPOL`.
    pub fn earliest_precharge(&self, t: &Timing) -> Cycle {
        let tras_bound = self.last_act.map_or(0, |a| a.saturating_add(t.t_ras));
        let col_bound = self.last_col.map_or(0, |c| c.end.saturating_sub(t.t_cpol));
        tras_bound.max(col_bound)
    }

    /// Number of COL packets issued since the row was opened.
    pub fn cols_since_act(&self) -> u64 {
        self.cols_since_act
    }

    /// Record an ACT starting at `start` opening `row`.
    pub fn record_activate(&mut self, start: Cycle, row: u64, t: &Timing) {
        self.amps = SenseAmps::Open { row };
        self.last_act = Some(start);
        self.col_allowed = start.saturating_add(t.t_rcd).saturating_add(1);
        self.last_col = None;
        self.cols_since_act = 0;
    }

    /// Record a COL packet occupying `packet` on the COL bus.
    pub fn record_col(&mut self, packet: Interval) {
        self.last_col = Some(packet);
        self.cols_since_act += 1;
    }

    /// Record a PRER starting at `start`; the bank closes and may be
    /// re-activated `tRP` later.
    pub fn record_precharge(&mut self, start: Cycle, t: &Timing) {
        self.amps = SenseAmps::Closed;
        self.ready_for_act = self.ready_for_act.max(start.saturating_add(t.t_rp));
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timing {
        Timing::default()
    }

    #[test]
    fn fresh_bank_is_immediately_activatable() {
        let b = Bank::new();
        assert_eq!(b.amps(), SenseAmps::Closed);
        assert_eq!(b.earliest_activate(&t()), 0);
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn act_opens_row_and_gates_col_by_trcd_plus_one() {
        let mut b = Bank::new();
        b.record_activate(100, 7, &t());
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.earliest_col(), 100 + 11 + 1);
    }

    #[test]
    fn col_packets_serialize_per_bank() {
        let mut b = Bank::new();
        b.record_activate(0, 0, &t());
        b.record_col(Interval::with_len(20, 4));
        assert_eq!(b.earliest_col(), 24);
    }

    #[test]
    fn precharge_respects_tras_and_tcpol() {
        let mut b = Bank::new();
        b.record_activate(10, 0, &t());
        // No COL yet: bounded by tRAS alone.
        assert_eq!(b.earliest_precharge(&t()), 10 + 8);
        // A COL packet ending at 40 allows PRER from 39 (1 cycle overlap).
        b.record_col(Interval::with_len(36, 4));
        assert_eq!(b.earliest_precharge(&t()), 39);
    }

    #[test]
    fn precharge_closes_and_gates_next_act_by_trp_and_trc() {
        let mut b = Bank::new();
        b.record_activate(10, 0, &t());
        b.record_precharge(20, &t());
        assert_eq!(b.amps(), SenseAmps::Closed);
        // tRP bound: 20 + 10 = 30; tRC bound: 10 + 34 = 44. tRC dominates.
        assert_eq!(b.earliest_activate(&t()), 44);
    }

    #[test]
    fn reactivation_resets_col_gate() {
        let mut b = Bank::new();
        b.record_activate(0, 0, &t());
        b.record_col(Interval::with_len(12, 4));
        b.record_precharge(20, &t());
        b.record_activate(44, 3, &t());
        assert_eq!(b.open_row(), Some(3));
        assert_eq!(b.earliest_col(), 44 + 12);
    }
}
