//! Timing parameters of a Direct RDRAM part.
//!
//! Values follow the paper's Figure 2, which tabulates the "Min -50 -800"
//! 64M/72M Direct RDRAM part. All parameters are expressed in 400 MHz
//! interface-clock cycles (2.5 ns per cycle). The data *transfer* rate is
//! 800 MHz (both clock edges), so one 4-cycle DATA packet moves 16 bytes and
//! the peak bandwidth of a single device is 1.6 GB/s.

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// Duration of one interface-clock cycle in nanoseconds.
pub const CYCLE_NS: f64 = 2.5;

/// Bytes carried by one DATA packet (16 bits on each of 8 clock edges x 2).
pub const PACKET_BYTES: u64 = 16;

/// Bytes per stream element: the paper models streams of 64-bit words.
pub const ELEM_BYTES: u64 = 8;

/// 64-bit words per DATA packet (`w_p` in the paper's equations).
pub const WORDS_PER_PACKET: u64 = PACKET_BYTES / ELEM_BYTES;

/// Timing parameters of a Direct RDRAM device, in interface-clock cycles.
///
/// The defaults ([`Timing::default`], equivalently [`Timing::direct_800_50`])
/// reproduce the paper's Figure 2. Construct custom parts with struct-update
/// syntax and check them with [`Timing::validate`]:
///
/// ```
/// use rdram::Timing;
///
/// let slow_core = Timing { t_rp: 12, ..Timing::default() };
/// slow_core.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Timing {
    /// Packet transfer time: every ROW, COL, and DATA packet occupies its bus
    /// for this many cycles (`tPACK`, 4 cycles = 10 ns).
    pub t_pack: Cycle,
    /// Minimum interval between a ROW ACT packet and the first COL packet to
    /// the newly opened row (`tRCD`, 11 cycles).
    pub t_rcd: Cycle,
    /// Page precharge time: minimum interval between a ROW PRER packet and a
    /// subsequent ACT to the same bank (`tRP`, 10 cycles).
    pub t_rp: Cycle,
    /// Column/precharge overlap: a PRER may overlap the final COL packet to
    /// the page by at most this much (`tCPOL`, 1 cycle).
    pub t_cpol: Cycle,
    /// Page-hit latency: delay from the start of a COL packet to valid data
    /// (`tCAC`, 8 cycles).
    pub t_cac: Cycle,
    /// Page-miss latency: delay from the start of a ROW ACT packet to valid
    /// data (`tRAC = tRCD + tCAC + 1` extra cycle, 20 cycles).
    pub t_rac: Cycle,
    /// Page-miss cycle time: minimum interval between successive ROW ACT
    /// packets to the *same bank* (`tRC`, 34 cycles).
    pub t_rc: Cycle,
    /// Row/row packet delay: minimum interval between consecutive ROW ACT
    /// packets to the same *device*, any bank (`tRR`, 8 cycles).
    pub t_rr: Cycle,
    /// Round-trip bus delay added to read page-hit latency, because the DATA
    /// packet travels opposite to the command (`tRDLY`, 2 cycles; no delay
    /// for writes).
    pub t_rdly: Cycle,
    /// Read/write bus turnaround: minimum gap on the DATA bus between the end
    /// of write data and the start of read data
    /// (`tRW = tPACK + tRDLY`, 6 cycles).
    pub t_rw: Cycle,
    /// Minimum interval between a ROW ACT packet and the PRER that closes the
    /// same row. Mentioned in the paper's prose but not tabulated; the
    /// datasheet minimum is 20 ns = 8 cycles, which satisfies the paper's
    /// stated invariant `tRAS + tRP < 2*tRR + tRAC`.
    pub t_ras: Cycle,
}

impl Timing {
    /// Timing of the -800/-50 Direct RDRAM part from the paper's Figure 2.
    pub const fn direct_800_50() -> Self {
        Timing {
            t_pack: 4,
            t_rcd: 11,
            t_rp: 10,
            t_cpol: 1,
            t_cac: 8,
            t_rac: 20,
            t_rc: 34,
            t_rr: 8,
            t_rdly: 2,
            t_rw: 6,
            t_ras: 8,
        }
    }

    /// Delay from the start of a COL WR packet to the start of its write DATA
    /// packet.
    ///
    /// The paper's Figure 2 does not tabulate a write delay; we launch write
    /// data `tCAC - tRDLY` after the COL packet so reads and writes occupy
    /// the DATA bus symmetrically and the write-to-read turnaround works out
    /// to exactly `tRW` (see DESIGN.md).
    pub fn write_data_delay(&self) -> Cycle {
        self.t_cac.saturating_sub(self.t_rdly)
    }

    /// Delay from the start of a COL RD packet to the start of its read DATA
    /// packet (`tCAC + tRDLY`).
    pub fn read_data_delay(&self) -> Cycle {
        self.t_cac + self.t_rdly
    }

    /// Peak data-bus bandwidth in bytes per interface-clock cycle.
    ///
    /// For the default part this is 16 bytes / 4 cycles = 4 B/cycle,
    /// i.e. 1.6 GB/s at 400 MHz.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        PACKET_BYTES as f64 / self.t_pack as f64
    }

    /// Peak bandwidth in gigabytes per second.
    pub fn peak_gbytes_per_sec(&self) -> f64 {
        self.peak_bytes_per_cycle() / CYCLE_NS
    }

    /// Check internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated relation:
    ///
    /// * every parameter governing a packet or latency must be non-zero,
    /// * `tRAC = tRCD + tCAC + 1` (the paper's "extra cycle"),
    /// * `tRW = tPACK + tRDLY`,
    /// * `tRC >= tRAS + tRP` (a bank cannot re-activate before it has been
    ///   held open and precharged), and
    /// * `tRAS + tRP < 2*tRR + tRAC`, the paper's condition for precharge to
    ///   hide completely under pipelined accesses in the closed-page case.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_pack == 0 {
            return Err("tPACK must be non-zero".into());
        }
        if self.t_cac == 0 || self.t_rcd == 0 || self.t_rp == 0 {
            return Err("tCAC, tRCD and tRP must be non-zero".into());
        }
        if self.t_rac != self.t_rcd + self.t_cac + 1 {
            return Err(format!(
                "tRAC ({}) must equal tRCD + tCAC + 1 ({})",
                self.t_rac,
                self.t_rcd + self.t_cac + 1
            ));
        }
        if self.t_rw != self.t_pack + self.t_rdly {
            return Err(format!(
                "tRW ({}) must equal tPACK + tRDLY ({})",
                self.t_rw,
                self.t_pack + self.t_rdly
            ));
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must be at least tRAS + tRP ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.t_ras + self.t_rp >= 2 * self.t_rr + self.t_rac {
            return Err(format!(
                "tRAS + tRP ({}) must be less than 2*tRR + tRAC ({}) for \
                 precharge to overlap pipelined accesses",
                self.t_ras + self.t_rp,
                2 * self.t_rr + self.t_rac
            ));
        }
        Ok(())
    }
}

impl Default for Timing {
    fn default() -> Self {
        Self::direct_800_50()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure_2() {
        let t = Timing::default();
        assert_eq!(t.t_pack, 4);
        assert_eq!(t.t_rcd, 11);
        assert_eq!(t.t_rp, 10);
        assert_eq!(t.t_cpol, 1);
        assert_eq!(t.t_cac, 8);
        assert_eq!(t.t_rac, 20);
        assert_eq!(t.t_rc, 34);
        assert_eq!(t.t_rr, 8);
        assert_eq!(t.t_rdly, 2);
        assert_eq!(t.t_rw, 6);
    }

    #[test]
    fn default_validates() {
        Timing::default().validate().unwrap();
    }

    #[test]
    fn peak_bandwidth_is_1_6_gbytes_per_sec() {
        let t = Timing::default();
        assert_eq!(t.peak_bytes_per_cycle(), 4.0);
        assert!((t.peak_gbytes_per_sec() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn trac_relation_is_enforced() {
        let t = Timing {
            t_rac: 21,
            ..Timing::default()
        };
        let err = t.validate().unwrap_err();
        assert!(err.contains("tRAC"), "unexpected message: {err}");
    }

    #[test]
    fn trw_relation_is_enforced() {
        let t = Timing {
            t_rw: 7,
            ..Timing::default()
        };
        assert!(t.validate().unwrap_err().contains("tRW"));
    }

    #[test]
    fn precharge_overlap_invariant_is_enforced() {
        // tRAS large enough that tRAS + tRP >= 2*tRR + tRAC = 36.
        let t = Timing {
            t_ras: 26,
            t_rc: 40,
            ..Timing::default()
        };
        assert!(t.validate().unwrap_err().contains("tRAS"));
    }

    #[test]
    fn data_delays() {
        let t = Timing::default();
        assert_eq!(t.read_data_delay(), 10);
        assert_eq!(t.write_data_delay(), 6);
    }

    #[test]
    fn packet_word_constants() {
        assert_eq!(WORDS_PER_PACKET, 2);
        assert_eq!(PACKET_BYTES, 16);
        assert_eq!(ELEM_BYTES, 8);
    }
}
