//! Cycle-accurate timing model of a **Direct Rambus DRAM** (RDRAM) device.
//!
//! This crate is the memory substrate for the reproduction of Hong et al.,
//! *"Access Order and Effective Bandwidth for Streams on a Direct Rambus
//! Memory"* (HPCA 1999). It models a single Direct RDRAM chip at the
//! granularity of the 400 MHz interface clock:
//!
//! * eight (configurable) independent **banks**, each with its own sense-amp
//!   row buffer that can be opened (`ACT`), accessed (`COL RD`/`COL WR`), and
//!   precharged (`PRER`) independently;
//! * three packet **buses** — ROW commands, COL commands, and DATA — each
//!   carrying one 4-cycle packet at a time, with write-to-read turnaround
//!   enforced on the DATA bus;
//! * the full set of timing constraints from the paper's Figure 2
//!   (`tRCD`, `tRP`, `tCAC`, `tRAC`, `tRC`, `tRR`, `tRDLY`, `tRW`, `tCPOL`,
//!   `tRAS`), see [`Timing`];
//! * **CLI** (cacheline) and **PI** (page) address interleaving, see
//!   [`AddressMap`];
//! * open-page and closed-page policies via per-access auto-precharge;
//! * an optional packet-level [`trace`] used to regenerate the paper's
//!   Figures 5 and 6;
//! * a byte-accurate [`MemoryImage`] so simulations can move real data, and
//! * the paper's Figure 1 catalogue of conventional DRAM timing parameters
//!   plus a functional fast-page-mode device model in [`legacy`].
//!
//! The device is driven by a memory controller (see the `baseline` and `smc`
//! crates) through a two-phase protocol: ask [`Rdram::earliest`] when a
//! command could legally start, then commit it with [`Rdram::issue_at`].
//!
//! # Example
//!
//! Read one DATA packet (16 bytes) from a closed bank: precharge is not
//! needed, but the row must be activated before the column access.
//!
//! ```
//! use rdram::{Command, DeviceConfig, Rdram};
//!
//! # fn main() -> Result<(), rdram::ProtocolError> {
//! let mut dev = Rdram::new(DeviceConfig::default());
//! let act = Command::activate(0, 3);
//! let t0 = dev.earliest(&act, 0);
//! dev.issue_at(&act, t0)?;
//!
//! let col = Command::read(0, 0);
//! let t1 = dev.earliest(&col, t0);
//! let outcome = dev.issue_at(&col, t1)?;
//! let data = outcome.data.expect("reads return a data interval");
//! // Page-miss read latency: tRAC (= tRCD + tCAC + 1) plus the round-trip
//! // bus delay tRDLY.
//! assert_eq!(data.start, t0 + dev.timing().t_rac + dev.timing().t_rdly);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod address;
mod bank;
mod bus;
mod config;
mod device;
mod error;
mod faults;
pub mod legacy;
mod packet;
pub mod refresh;
pub mod sink;
mod stats;
mod storage;
mod timing;
pub mod trace;

pub use address::{AddressMap, Interleave, Location};
pub use bank::{Bank, SenseAmps};
pub use bus::{Bus, DataBus};
pub use config::DeviceConfig;
pub use device::{AccessPlan, CommandPort, Outcome, Rdram};
pub use error::ProtocolError;
pub use faults::ChannelFaults;
pub use packet::{ColOp, Command, Dir, Interval, RowOp};
pub use sink::{CommandRecord, CommandTrace, SharedSink, TraceSink};
pub use stats::DeviceStats;
pub use storage::MemoryImage;
pub use timing::{Timing, CYCLE_NS, ELEM_BYTES, PACKET_BYTES, WORDS_PER_PACKET};

/// A point in time, measured in 400 MHz interface-clock cycles (2.5 ns each).
pub type Cycle = u64;
