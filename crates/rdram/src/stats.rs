//! Aggregate device statistics.

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// Counters accumulated by the device as commands are issued.
///
/// These feed the effective-bandwidth and overhead metrics reported by the
/// simulation crate (page-hit rates, turnaround counts, bus utilization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DeviceStats {
    /// ROW ACT packets issued (each one is a page miss being serviced).
    pub activates: u64,
    /// Explicit ROW PRER packets issued.
    pub precharges: u64,
    /// Pages closed via a COL auto-precharge (closed-page policy).
    pub auto_precharges: u64,
    /// COL RD packets issued to an already-open row.
    pub read_hits: u64,
    /// COL WR packets issued to an already-open row.
    pub write_hits: u64,
    /// Read DATA packets transferred.
    pub read_packets: u64,
    /// Write DATA packets transferred.
    pub write_packets: u64,
    /// Write-to-read bus turnarounds paid.
    pub turnarounds: u64,
    /// Cycles the DATA bus carried packets.
    pub data_busy_cycles: Cycle,
}

impl DeviceStats {
    /// Total COL packets issued.
    pub fn col_packets(&self) -> u64 {
        self.read_packets + self.write_packets
    }

    /// Fraction of column accesses that hit an open page, in `[0, 1]`.
    ///
    /// Every DATA packet requires a COL packet; a COL packet whose bank had
    /// to be activated first is a page miss. Returns `None` if no column
    /// accesses have been issued.
    pub fn page_hit_rate(&self) -> Option<f64> {
        let total = self.col_packets();
        if total == 0 {
            return None;
        }
        Some((self.read_hits + self.write_hits) as f64 / total as f64)
    }

    /// DATA-bus utilization over `elapsed` cycles, in `[0, 1]`.
    pub fn data_bus_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.data_busy_cycles as f64 / elapsed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_none_when_idle() {
        assert_eq!(DeviceStats::default().page_hit_rate(), None);
    }

    #[test]
    fn hit_rate_counts_reads_and_writes() {
        let s = DeviceStats {
            read_packets: 6,
            write_packets: 2,
            read_hits: 3,
            write_hits: 1,
            ..DeviceStats::default()
        };
        assert_eq!(s.col_packets(), 8);
        assert_eq!(s.page_hit_rate(), Some(0.5));
    }

    #[test]
    fn utilization() {
        let s = DeviceStats {
            data_busy_cycles: 40,
            ..DeviceStats::default()
        };
        assert_eq!(s.data_bus_utilization(100), 0.4);
        assert_eq!(s.data_bus_utilization(0), 0.0);
    }

    #[test]
    fn hit_rate_none_even_after_row_activity() {
        // ACT/PRER traffic without any COL packets (e.g. a run aborted
        // before its first column access) must not fabricate a hit rate.
        let s = DeviceStats {
            activates: 12,
            precharges: 9,
            auto_precharges: 3,
            ..DeviceStats::default()
        };
        assert_eq!(s.col_packets(), 0);
        assert_eq!(s.page_hit_rate(), None);
        assert_eq!(s.data_bus_utilization(1_000), 0.0);
    }

    #[test]
    fn hit_rate_extremes_are_exact() {
        let all_miss = DeviceStats {
            read_packets: 5,
            write_packets: 3,
            ..DeviceStats::default()
        };
        assert_eq!(all_miss.page_hit_rate(), Some(0.0));
        let all_hit = DeviceStats {
            read_packets: 5,
            write_packets: 3,
            read_hits: 5,
            write_hits: 3,
            ..DeviceStats::default()
        };
        assert_eq!(all_hit.page_hit_rate(), Some(1.0));
    }

    #[test]
    fn utilization_is_exact_at_full_occupancy() {
        let s = DeviceStats {
            data_busy_cycles: 256,
            ..DeviceStats::default()
        };
        assert_eq!(s.data_bus_utilization(256), 1.0);
        // One-cycle runs divide cleanly too — no epsilon creep.
        let one = DeviceStats {
            data_busy_cycles: 1,
            ..DeviceStats::default()
        };
        assert_eq!(one.data_bus_utilization(1), 1.0);
        assert_eq!(one.data_bus_utilization(2), 0.5);
    }
}
