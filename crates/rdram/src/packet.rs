//! Command packets and bus intervals.
//!
//! All communication with a Direct RDRAM happens in 4-cycle packets on three
//! independent buses: ROW commands (activate / precharge), COL commands
//! (read / write / retire), and DATA.

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// Direction of a DATA-bus transfer, from the controller's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Memory-to-controller (a read).
    Read,
    /// Controller-to-memory (a write).
    Write,
}

impl Dir {
    /// The opposite direction.
    pub fn flipped(self) -> Dir {
        match self {
            Dir::Read => Dir::Write,
            Dir::Write => Dir::Read,
        }
    }
}

/// A half-open interval of interface-clock cycles `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// First cycle of the interval.
    pub start: Cycle,
    /// One past the last cycle of the interval.
    pub end: Cycle,
}

impl Interval {
    /// Create an interval from a start cycle and a length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero (empty bus reservations are always a bug).
    pub fn with_len(start: Cycle, len: Cycle) -> Self {
        assert!(len > 0, "bus reservations must be non-empty");
        Interval {
            start,
            end: start.saturating_add(len),
        }
    }

    /// Number of cycles covered.
    pub fn len(&self) -> Cycle {
        self.end.saturating_sub(self.start)
    }

    /// Whether the interval covers no cycles.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether two intervals share at least one cycle.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Operations carried by ROW command packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOp {
    /// Open `row` in `bank`: move the row's cells into the bank's sense amps.
    Activate {
        /// Target bank index.
        bank: usize,
        /// Row (DRAM page) index within the bank.
        row: u64,
    },
    /// Close the open row in `bank` and begin precharging its sense amps.
    Precharge {
        /// Target bank index.
        bank: usize,
    },
}

/// Operations carried by COL command packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColOp {
    /// Transfer one DATA packet from the sense amps to the bus.
    Read {
        /// Target bank index.
        bank: usize,
        /// Byte offset of the packet within the open row.
        col: u64,
    },
    /// Transfer one DATA packet from the bus into the device write buffer.
    Write {
        /// Target bank index.
        bank: usize,
        /// Byte offset of the packet within the open row.
        col: u64,
    },
}

impl ColOp {
    /// The bank this column operation targets.
    pub fn bank(&self) -> usize {
        match *self {
            ColOp::Read { bank, .. } | ColOp::Write { bank, .. } => bank,
        }
    }

    /// The byte offset within the open row.
    pub fn col(&self) -> u64 {
        match *self {
            ColOp::Read { col, .. } | ColOp::Write { col, .. } => col,
        }
    }

    /// DATA-bus direction of this operation.
    pub fn dir(&self) -> Dir {
        match self {
            ColOp::Read { .. } => Dir::Read,
            ColOp::Write { .. } => Dir::Write,
        }
    }
}

/// A command a memory controller can issue to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// A ROW command packet.
    Row(RowOp),
    /// A COL command packet. When `auto_precharge` is set the device closes
    /// the page after the access via the COLX/PREX field, without occupying
    /// the ROW bus — this implements the closed-page policy and, per the
    /// paper, "can be completely overlapped with other activity".
    Col {
        /// The column operation to perform.
        op: ColOp,
        /// Close the page after this access (closed-page policy).
        auto_precharge: bool,
    },
}

impl Command {
    /// Convenience constructor for a ROW ACT packet.
    pub fn activate(bank: usize, row: u64) -> Self {
        Command::Row(RowOp::Activate { bank, row })
    }

    /// Convenience constructor for a ROW PRER packet.
    pub fn precharge(bank: usize) -> Self {
        Command::Row(RowOp::Precharge { bank })
    }

    /// Convenience constructor for a COL RD packet without auto-precharge.
    pub fn read(bank: usize, col: u64) -> Self {
        Command::Col {
            op: ColOp::Read { bank, col },
            auto_precharge: false,
        }
    }

    /// Convenience constructor for a COL WR packet without auto-precharge.
    pub fn write(bank: usize, col: u64) -> Self {
        Command::Col {
            op: ColOp::Write { bank, col },
            auto_precharge: false,
        }
    }

    /// The bank the command targets.
    pub fn bank(&self) -> usize {
        match self {
            Command::Row(RowOp::Activate { bank, .. })
            | Command::Row(RowOp::Precharge { bank }) => *bank,
            Command::Col { op, .. } => op.bank(),
        }
    }

    /// Set the auto-precharge flag on a COL command.
    ///
    /// # Panics
    ///
    /// Panics if the command is a ROW command, which has no such flag.
    pub fn with_auto_precharge(self) -> Self {
        match self {
            Command::Col { op, .. } => Command::Col {
                op,
                auto_precharge: true,
            },
            Command::Row(_) => panic!("auto-precharge applies only to COL commands"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_overlap() {
        let a = Interval::with_len(0, 4);
        let b = Interval::with_len(3, 4);
        let c = Interval::with_len(4, 4);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_panics() {
        let _ = Interval::with_len(5, 0);
    }

    #[test]
    fn command_accessors() {
        let act = Command::activate(3, 7);
        assert_eq!(act.bank(), 3);
        let rd = Command::read(1, 64);
        assert_eq!(rd.bank(), 1);
        if let Command::Col { op, auto_precharge } = rd {
            assert_eq!(op.dir(), Dir::Read);
            assert_eq!(op.col(), 64);
            assert!(!auto_precharge);
        } else {
            panic!("read must be a COL command");
        }
        let rd_ap = rd.with_auto_precharge();
        if let Command::Col { auto_precharge, .. } = rd_ap {
            assert!(auto_precharge);
        }
    }

    #[test]
    #[should_panic(expected = "auto-precharge")]
    fn auto_precharge_on_row_panics() {
        let _ = Command::activate(0, 0).with_auto_precharge();
    }

    #[test]
    fn dir_flips() {
        assert_eq!(Dir::Read.flipped(), Dir::Write);
        assert_eq!(Dir::Write.flipped(), Dir::Read);
    }
}
