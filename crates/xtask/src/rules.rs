//! The rule families, each a pure function from a [`SourceFile`] to
//! findings.
//!
//! Every rule skips `#[cfg(test)]` regions. Messages always embed the
//! trimmed offending source line, because the allowlist suppresses
//! findings by substring match against the message — that grammar is
//! unchanged from the substring-scanner days.

use crate::engine::{find_matches, Finding, SourceFile};
use crate::lexer::TokenKind;

/// Integer types an `as` cast can truncate a `u64` cycle count into.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize"];

/// Identifiers whose presence marks nondeterminism: randomized-iteration
/// containers and hashers, and wall-clock reads. Any of these in a path
/// that feeds DeviceStats, telemetry, campaign stores, or the serve loop
/// breaks byte-identical replay.
const NONDET_IDENTS: &[(&str, &str)] = &[
    ("HashMap", "randomized iteration order breaks byte-identical stores; use BTreeMap or an index-keyed Vec"),
    ("HashSet", "randomized iteration order breaks byte-identical stores; use BTreeSet or an index-keyed Vec"),
    ("RandomState", "per-process random hasher seeds; use a deterministic container"),
    ("DefaultHasher", "hash output is not stable across toolchains; use the fnv1a64 helper"),
    ("SystemTime", "wall-clock read in a deterministic path"),
    ("Instant", "wall-clock read in a deterministic path"),
];

/// Protocol enums on which a `_ =>` wildcard arm is forbidden, so a new
/// command/packet/bank-state/ladder-state variant forces every consumer to
/// handle it explicitly.
const PROTOCOL_ENUMS: &[&str] = &[
    "Command",
    "RowOp",
    "ColOp",
    "Dir",
    "SenseAmps",
    "BankState",
    "DegradeLevel",
];

/// Identifier names the cycle-integrity rule treats as carrying cycle
/// counts inside the controller/device hot paths.
fn is_cycle_ident(name: &str) -> bool {
    matches!(
        name,
        "now" | "cycle" | "cycles" | "earliest" | "deadline" | "free" | "start" | "end"
    ) || name.ends_with("_cycle")
        || name.ends_with("_cycles")
        || name.ends_with("_at")
        || (name.starts_with("t_") && name.len() > 2)
}

/// no-panic: `.unwrap()`, `.expect(`, `panic!(`, `todo!(`,
/// `unimplemented!(` in non-test code.
pub fn no_panic(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        let flagged = if t.is_ident("unwrap")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            Some(".unwrap()")
        } else if t.is_ident("expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            Some(".expect(")
        } else if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && toks[i - 1].is_punct('.'))
        {
            match t.text.as_str() {
                "panic" => Some("panic!("),
                "todo" => Some("todo!("),
                _ => Some("unimplemented!("),
            }
        } else {
            None
        };
        if let Some(pat) = flagged {
            out.push(file.finding(
                "no-panic",
                i,
                format!(
                    "`{pat}` in non-test hot-path code: {}",
                    file.line_text(t.line)
                ),
            ));
        }
    }
    out
}

/// no-float: `f32`/`f64` type tokens and float literals outside declared
/// float boundaries (fn signatures mentioning a float type, float-typed
/// consts) — cycle accounting is integer arithmetic.
pub fn no_float(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if file.in_test[i] || file.float_ok[i] {
            continue;
        }
        let what = if t.is_ident("f64") {
            "`f64`"
        } else if t.is_ident("f32") {
            "`f32`"
        } else if t.kind == TokenKind::Float {
            "float literal"
        } else {
            continue;
        };
        out.push(file.finding(
            "no-float",
            i,
            format!(
                "{what} outside a declared float boundary (cycle accounting is integer-only): {}",
                file.line_text(t.line)
            ),
        ));
    }
    out
}

/// no-nondeterminism: randomized containers/hashers and wall-clock reads.
pub fn no_nondeterminism(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if file.in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if let Some((name, why)) = NONDET_IDENTS.iter().find(|(n, _)| t.text == *n) {
            out.push(file.finding(
                "no-nondeterminism",
                i,
                format!("`{name}` — {why}: {}", file.line_text(t.line)),
            ));
        }
    }
    out
}

/// cycle-integrity: in the controller/device hot paths, truncating `as`
/// casts are forbidden outright, and bare `+`/`-`/`*` with a
/// cycle-carrying operand must be a checked/saturating call instead (or
/// carry an allowlist entry with a rationale).
pub fn cycle_integrity(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        // Truncating casts.
        if t.is_ident("as") {
            if let Some(ty) = toks.get(i + 1) {
                if NARROW_INTS.iter().any(|n| ty.is_ident(n)) {
                    out.push(file.finding(
                        "cycle-integrity",
                        i,
                        format!(
                            "truncating `as {}` cast in a cycle hot path (use try_into or widen): {}",
                            ty.text,
                            file.line_text(t.line)
                        ),
                    ));
                }
            }
            continue;
        }
        // Bare arithmetic with a cycle-carrying adjacent operand.
        let op = match t.text.as_str() {
            "+" | "-" | "*" if t.kind == TokenKind::Punct => t.text.as_str(),
            _ => continue,
        };
        // Compound assignment (`+=`) and arrows (`->`) are not binary
        // arithmetic; accumulator updates are bounded by run length.
        if toks
            .get(i + 1)
            .is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
        {
            continue;
        }
        // Binary position: something value-like must precede the operator.
        let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
            continue;
        };
        let binary = matches!(
            prev.kind,
            TokenKind::Ident | TokenKind::Int | TokenKind::Float
        ) && !prev.is_ident("return")
            || prev.is_punct(')')
            || prev.is_punct(']');
        if !binary {
            continue;
        }
        let prev_cycle = prev.kind == TokenKind::Ident && is_cycle_ident(&prev.text);
        let next_cycle = toks
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Ident && is_cycle_ident(&n.text))
            // `x + self.t_rw` / `x + t.t_rcd`: look through one `ident .`
            // pair to the field being read.
            || (toks.get(i + 2).is_some_and(|d| d.is_punct('.'))
                && toks
                    .get(i + 3)
                    .is_some_and(|f| f.kind == TokenKind::Ident && is_cycle_ident(&f.text)));
        if prev_cycle || next_cycle {
            out.push(file.finding(
                "cycle-integrity",
                i,
                format!(
                    "unchecked `{op}` on a cycle-carrying value (use checked_/saturating_ ops \
                     or allowlist with a rationale): {}",
                    file.line_text(t.line)
                ),
            ));
        }
    }
    out
}

/// exhaustive-match: a bare `_ =>` wildcard arm in a match that patterns
/// over a protocol enum silently swallows future variants.
pub fn exhaustive_match(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for m in find_matches(toks) {
        if m.wildcard_arms.is_empty() {
            continue;
        }
        // A match "patterns over" a protocol enum when any arm pattern (or
        // the scrutinee itself) names `Enum::`.
        let mut ranges = m.arm_patterns.clone();
        ranges.push(m.scrutinee);
        let named = ranges.iter().find_map(|&(a, b)| {
            (a..b).find_map(|k| {
                let t = &toks[k];
                if t.kind == TokenKind::Ident
                    && PROTOCOL_ENUMS.contains(&t.text.as_str())
                    && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                {
                    Some(t.text.clone())
                } else {
                    None
                }
            })
        });
        if let Some(enum_name) = named {
            for &w in &m.wildcard_arms {
                if file.in_test[w] {
                    continue;
                }
                out.push(file.finding(
                    "exhaustive-match",
                    w,
                    format!(
                        "`_ =>` wildcard arm in a match over protocol enum `{enum_name}` \
                         (new variants must force explicit handling): {}",
                        file.line_text(toks[w].line)
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(rule: fn(&SourceFile) -> Vec<Finding>, src: &str) -> Vec<Finding> {
        rule(&SourceFile::new("fixture.rs", src))
    }

    #[test]
    fn no_panic_ignores_idents_in_strings_and_tests() {
        let src = r#"
fn a() { let s = "please .unwrap() me"; }
fn b(x: Option<u8>) -> u8 { x.unwrap() }
#[cfg(test)]
mod tests { fn t(x: Option<u8>) { x.unwrap(); } }
"#;
        let f = findings(no_panic, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn cycle_integrity_sees_field_reads() {
        let src = "fn f(free: u64, t: &Timing) -> u64 { free + t.t_rw }";
        assert_eq!(findings(cycle_integrity, src).len(), 1);
        let ok = "fn f(free: u64, t: &Timing) -> u64 { free.saturating_add(t.t_rw) }";
        assert!(findings(cycle_integrity, ok).is_empty());
    }

    #[test]
    fn nondeterminism_is_token_exact() {
        // `Instantiate` must not fire; `Instant` must.
        let src = "/// Instantiate the policy.\nfn f() { let x = Instantiate::new(); }";
        assert!(findings(no_nondeterminism, src).is_empty());
        let bad = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(findings(no_nondeterminism, bad).len(), 1);
    }
}
