//! Machine-readable finding reports: a plain JSON array and SARIF 2.1.0.
//!
//! Hand-rolled emission (std only) — the workspace's vendored serde stubs
//! are simulation-facing and xtask stays dependency-free. The SARIF shape
//! is the minimal valid subset CI artifact viewers understand: one run,
//! one driver, per-rule metadata, one result per finding with a physical
//! location.

use crate::engine::Finding;

/// JSON-escape `s` into `out`.
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    esc(s, &mut out);
    out.push('"');
    out
}

/// Render findings as a JSON array of `{rule, path, line, col, message}`.
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            quoted(f.rule),
            quoted(&f.path),
            f.line,
            f.col,
            quoted(&f.message)
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Every rule id the analyzer can emit, with a one-line description —
/// becomes the SARIF driver's rule table.
pub const RULE_CATALOG: &[(&str, &str)] = &[
    ("no-panic", "No .unwrap()/.expect()/panic! in non-test hot-path code"),
    ("no-float", "Cycle accounting is integer-only; floats live behind declared boundaries"),
    (
        "no-nondeterminism",
        "No randomized containers, unstable hashers, or wall-clock reads in deterministic paths",
    ),
    (
        "cycle-integrity",
        "No truncating casts or unchecked +/-/* on cycle-carrying values in device/controller hot paths",
    ),
    (
        "exhaustive-match",
        "No `_ =>` wildcard arms in matches over protocol enums",
    ),
    ("forbid-unsafe", "Every crate root forbids unsafe code"),
    ("strict-docs", "Hot-path crates deny missing docs"),
    ("vendor-drift", "Vendored stubs stay named, referenced, and self-describing"),
    ("stale-allowlist", "Allowlist entries that suppress nothing must be removed"),
];

/// Render findings as a SARIF 2.1.0 log.
pub fn sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": \"2.1.0\",\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [{\n    \"tool\": {\"driver\": {\"name\": \"xtask-lint\", \"informationUri\": \"https://example.invalid/xtask\", \"rules\": [");
    for (i, (id, desc)) in RULE_CATALOG.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            quoted(id),
            quoted(desc)
        ));
    }
    out.push_str("\n    ]}},\n    \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            quoted(f.rule),
            quoted(&f.message),
            quoted(&f.path),
            f.line.max(1),
            f.col.max(1)
        ));
    }
    out.push_str("\n    ]\n  }]\n}\n");
    out
}
