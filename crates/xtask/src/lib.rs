//! Repository-specific static analysis (`cargo run -p xtask -- lint`).
//!
//! A span-aware analyzer built from three layers:
//!
//! * [`lexer`] — a token-level Rust lexer (strings, raw strings, nested
//!   block comments, char literals vs lifetimes) with byte spans and
//!   line/column positions;
//! * [`engine`] — per-file region analyses shared by every rule:
//!   `#[cfg(test)]` masking, float-boundary masking, match-expression
//!   structure;
//! * [`rules`] — the rule families. Besides the ported no-panic /
//!   no-float / crate-hygiene rules, three families fence the
//!   determinism and cycle-exactness guarantees the simulator's goldens
//!   rest on: **no-nondeterminism** (randomized containers, unstable
//!   hashers, wall-clock reads), **cycle-integrity** (truncating casts and
//!   unchecked arithmetic on cycle-carrying values in device/controller
//!   hot paths), and **exhaustive-match** (`_ =>` wildcard arms over
//!   protocol enums).
//!
//! Findings carry file/line/column and render as text, JSON, or SARIF
//! ([`report`]). Suppressions live in `lint-allow.txt`
//! ([`allowlist`]) with stale-entry detection; the fixture corpus under
//! `tests/fixtures/` proves each rule fires on known-bad input and stays
//! silent on known-good input.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use engine::{Finding, SourceFile};

/// Crates whose non-test code must be panic-free, float-free, and free of
/// nondeterminism (they feed DeviceStats, telemetry, campaign stores, or
/// the serve loop).
pub const HOT_PATH_CRATES: &[&str] = &[
    "rdram",
    "smc",
    "baseline",
    "faults",
    "checker",
    "telemetry",
    "campaign",
    "tenancy",
    "memsys",
];

/// Extra files held to the no-panic standard with no allowlist escape
/// hatch (entries naming them are reported as stale).
pub const NO_ALLOWLIST_FILES: &[&str] = &["crates/sim/src/runner.rs", "crates/sim/src/cli.rs"];

/// `sim` files that feed deterministic stores and so are scanned for
/// panics and nondeterminism (allowlist-eligible, unlike
/// [`NO_ALLOWLIST_FILES`]).
pub const SIM_DETERMINISTIC_FILES: &[&str] = &["crates/sim/src/serve.rs"];

/// Controller/device hot-path files under the cycle-integrity rule: this
/// is where the paper's integer-cycle timing rules live.
pub const CYCLE_HOT_FILES: &[&str] = &[
    "crates/rdram/src/device.rs",
    "crates/rdram/src/bank.rs",
    "crates/rdram/src/bus.rs",
    "crates/rdram/src/refresh.rs",
    "crates/rdram/src/packet.rs",
    "crates/rdram/src/timing.rs",
    "crates/smc/src/msu.rs",
    "crates/smc/src/controller.rs",
    "crates/baseline/src/controller.rs",
    "crates/memsys/src/system.rs",
    "crates/memsys/src/map.rs",
    "crates/faults/src/injector.rs",
    "crates/tenancy/src/retry.rs",
];

/// Crates that must carry `#![deny(missing_docs)]`.
pub const STRICT_DOCS_CRATES: &[&str] = &[
    "rdram",
    "smc",
    "baseline",
    "faults",
    "checker",
    "telemetry",
    "campaign",
    "tenancy",
    "memsys",
];

/// Name of the checked-in allowlist at the repository root.
pub const ALLOWLIST: &str = "lint-allow.txt";

/// Which rule families to run on one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// `.unwrap()` / `.expect(` / `panic!(` and friends.
    pub no_panic: bool,
    /// Float types and literals outside declared boundaries.
    pub no_float: bool,
    /// Randomized containers, unstable hashers, wall-clock reads.
    pub no_nondeterminism: bool,
    /// Truncating casts / unchecked cycle arithmetic.
    pub cycle_integrity: bool,
    /// `_ =>` wildcard arms over protocol enums.
    pub exhaustive_match: bool,
}

impl RuleSet {
    /// Every token-level rule family enabled (fixture corpus runs).
    pub fn all() -> Self {
        RuleSet {
            no_panic: true,
            no_float: true,
            no_nondeterminism: true,
            cycle_integrity: true,
            exhaustive_match: true,
        }
    }
}

/// Run the enabled token-level rules over already-loaded source text.
/// This is the entry point the fixture corpus tests drive.
pub fn scan_source(rel: &str, text: &str, rules: RuleSet) -> Vec<Finding> {
    let file = SourceFile::new(rel, text);
    let mut out = Vec::new();
    if rules.no_panic {
        out.extend(rules::no_panic(&file));
    }
    if rules.no_float {
        out.extend(rules::no_float(&file));
    }
    if rules.no_nondeterminism {
        out.extend(rules::no_nondeterminism(&file));
    }
    if rules.cycle_integrity {
        out.extend(rules::cycle_integrity(&file));
    }
    if rules.exhaustive_match {
        out.extend(rules::exhaustive_match(&file));
    }
    out
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_of(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .display()
        .to_string()
}

/// The rule set a repository file gets, derived from its path.
fn ruleset_for(rel: &str) -> RuleSet {
    let in_hot_crate = HOT_PATH_CRATES
        .iter()
        .any(|k| rel.starts_with(&format!("crates/{k}/src/")));
    let no_allowlist = NO_ALLOWLIST_FILES.iter().any(|p| rel.ends_with(p));
    let sim_det = SIM_DETERMINISTIC_FILES.iter().any(|p| rel.ends_with(p));
    RuleSet {
        no_panic: in_hot_crate || no_allowlist || sim_det,
        // sim's runner/CLI legitimately derive float bandwidth figures.
        no_float: in_hot_crate,
        no_nondeterminism: in_hot_crate || sim_det || rel.ends_with("crates/sim/src/runner.rs"),
        cycle_integrity: CYCLE_HOT_FILES.iter().any(|p| rel.ends_with(p)),
        // Wildcard-arm hygiene applies to every crate in the workspace.
        exhaustive_match: rel.starts_with("crates/") && rel.contains("/src/"),
    }
}

/// Everything one lint run produces.
pub struct LintOutcome {
    /// Findings that survived the allowlist (including stale-allowlist
    /// findings). Empty means the lint passes.
    pub findings: Vec<Finding>,
}

/// Run the full repository lint rooted at `root`.
pub fn run_lint(root: &Path) -> Result<LintOutcome, String> {
    let allow_path = root.join(ALLOWLIST);
    let allow_text = fs::read_to_string(&allow_path)
        .map_err(|e| format!("cannot read {}: {e}", allow_path.display()))?;
    let mut allow = allowlist::parse(&allow_text, ALLOWLIST)?;

    let mut findings = Vec::new();

    // Token-level rules over every crate source file.
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs.into_iter().filter(|d| d.is_dir()) {
            rust_files(&dir.join("src"), &mut files);
        }
    }
    for file in &files {
        let rel = rel_of(root, file);
        let rules = ruleset_for(&rel);
        let any = rules.no_panic
            || rules.no_float
            || rules.no_nondeterminism
            || rules.cycle_integrity
            || rules.exhaustive_match;
        if !any {
            continue;
        }
        match fs::read_to_string(file) {
            Ok(text) => findings.extend(scan_source(&rel, &text, rules)),
            Err(e) => findings.push(Finding {
                rule: "no-panic",
                path: rel,
                line: 0,
                col: 0,
                message: format!("cannot read file: {e}"),
            }),
        }
    }

    // Whole-crate and vendor hygiene checks.
    check_forbid_unsafe(root, &mut findings);
    check_strict_docs(root, &mut findings);
    check_vendor_drift(root, &mut findings);

    let findings = allowlist::apply(findings, &mut allow, NO_ALLOWLIST_FILES, ALLOWLIST);
    Ok(LintOutcome { findings })
}

fn check_forbid_unsafe(root: &Path, findings: &mut Vec<Finding>) {
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs.into_iter().filter(|d| d.is_dir()) {
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        let entry = if lib.is_file() { lib } else { main };
        let rel = rel_of(root, &entry);
        match fs::read_to_string(&entry) {
            Ok(text) if text.contains("#![forbid(unsafe_code)]") => {}
            Ok(_) => findings.push(Finding {
                rule: "forbid-unsafe",
                path: rel,
                line: 1,
                col: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]`".into(),
            }),
            Err(e) => findings.push(Finding {
                rule: "forbid-unsafe",
                path: rel,
                line: 0,
                col: 0,
                message: format!("cannot read crate root: {e}"),
            }),
        }
    }
}

fn check_strict_docs(root: &Path, findings: &mut Vec<Finding>) {
    for krate in STRICT_DOCS_CRATES {
        let lib = root.join("crates").join(krate).join("src/lib.rs");
        let rel = rel_of(root, &lib);
        match fs::read_to_string(&lib) {
            Ok(text) if text.contains("#![deny(missing_docs)]") => {}
            Ok(_) => findings.push(Finding {
                rule: "strict-docs",
                path: rel,
                line: 1,
                col: 1,
                message: "hot-path crate must carry `#![deny(missing_docs)]`".into(),
            }),
            Err(e) => findings.push(Finding {
                rule: "strict-docs",
                path: rel,
                line: 0,
                col: 0,
                message: format!("cannot read crate root: {e}"),
            }),
        }
    }
}

fn check_vendor_drift(root: &Path, findings: &mut Vec<Finding>) {
    let vendor = root.join("vendor");
    let root_manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let Ok(entries) = fs::read_dir(&vendor) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    // Concatenated manifests of all stubs, for intra-vendor references
    // (serde_derive is reachable only through serde's path dependency).
    let vendor_manifests: String = dirs
        .iter()
        .filter(|d| d.is_dir())
        .filter_map(|d| fs::read_to_string(d.join("Cargo.toml")).ok())
        .collect();
    for dir in dirs.iter().filter(|d| d.is_dir()) {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let rel = format!("vendor/{name}");
        let manifest = fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
        if !manifest.contains(&format!("name = \"{name}\"")) {
            findings.push(Finding {
                rule: "vendor-drift",
                path: format!("{rel}/Cargo.toml"),
                line: 1,
                col: 1,
                message: format!("package name must match directory name `{name}`"),
            });
        }
        let referenced = root_manifest.contains(&format!("vendor/{name}\""))
            || vendor_manifests.contains(&format!("../{name}\""));
        if !referenced {
            findings.push(Finding {
                rule: "vendor-drift",
                path: format!("{rel}/Cargo.toml"),
                line: 1,
                col: 1,
                message: "stub is referenced by neither the workspace manifest nor another stub"
                    .into(),
            });
        }
        match fs::read_to_string(dir.join("src/lib.rs")) {
            Ok(text) if text.contains("stand-in") => {}
            Ok(_) => findings.push(Finding {
                rule: "vendor-drift",
                path: format!("{rel}/src/lib.rs"),
                line: 1,
                col: 1,
                message: "stub must document itself as an offline stand-in".into(),
            }),
            Err(e) => findings.push(Finding {
                rule: "vendor-drift",
                path: format!("{rel}/src/lib.rs"),
                line: 0,
                col: 0,
                message: format!("cannot read stub root: {e}"),
            }),
        }
    }
    // Reverse direction: every vendor path the workspace names must exist.
    for line in root_manifest.lines() {
        if let Some(pos) = line.find("path = \"vendor/") {
            let rest = &line[pos + "path = \"".len()..];
            if let Some(end) = rest.find('"') {
                let path = &rest[..end];
                if !root.join(path).join("Cargo.toml").is_file() {
                    findings.push(Finding {
                        rule: "vendor-drift",
                        path: "Cargo.toml".into(),
                        line: 1,
                        col: 1,
                        message: format!("workspace references missing stub `{path}`"),
                    });
                }
            }
        }
    }
}
