//! A small token-level lexer for Rust source.
//!
//! The substring scanner this replaces could not tell a lifetime from a
//! char literal, a `HashMap` identifier from the word inside a doc string,
//! or a float literal from a range expression. The lexer produces a flat
//! token stream with byte spans and line/column positions; everything the
//! rule engine does — `#[cfg(test)]` region tracking, function-signature
//! scoping, match-arm analysis — is defined over these tokens, so string
//! and comment contents can never desynchronise a rule again.
//!
//! The lexer is deliberately *approximate where it is safe to be*: it does
//! not classify keywords (they surface as [`TokenKind::Ident`]) and emits
//! one [`TokenKind::Punct`] per punctuation character, leaving multi-char
//! operators (`=>`, `+=`, `->`) to the consumer. It is *exact where it
//! must be*: strings (including raw strings with any number of `#`s and
//! byte/raw-byte prefixes), nested block comments, char literals vs
//! lifetimes, and float vs integer vs range literals.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// Any string literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'\''`.
    Char,
    /// An integer literal, with any suffix: `42`, `0xFF`, `1_000u64`.
    Int,
    /// A float literal, with any suffix: `2.5`, `1e9`, `1.0f64`.
    Float,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
    /// 1-based source line.
    pub line: usize,
    /// 1-based column (in characters) on that line.
    pub col: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    chars: Vec<(usize, char)>,
    text: &'a str,
    i: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            chars: text.char_indices().collect(),
            text,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn byte_pos(&self) -> usize {
        self.chars.get(self.i).map_or(self.text.len(), |&(b, _)| b)
    }

    /// Advance one char, maintaining line/column accounting.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.i) {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

/// Lex `text` into tokens. Comments and whitespace are consumed but not
/// emitted; every emitted token carries its byte span and line/column.
pub fn lex(text: &str) -> Vec<Token> {
    let mut cur = Cursor::new(text);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && cur.peek(1) == Some('/') {
            while cur.peek(0).is_some_and(|c| c != '\n') {
                cur.bump();
            }
            continue;
        }
        // Block comment, nesting-aware.
        if c == '/' && cur.peek(1) == Some('*') {
            let mut depth = 1u32;
            cur.bump_n(2);
            while depth > 0 && cur.peek(0).is_some() {
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    depth += 1;
                    cur.bump_n(2);
                } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    depth -= 1;
                    cur.bump_n(2);
                } else {
                    cur.bump();
                }
            }
            continue;
        }
        // String prefixes: r", r#", b", br#", rb is not valid Rust; also
        // raw identifiers r#name.
        if c == 'r' || c == 'b' {
            if let Some(tok) = try_prefixed(&mut cur) {
                out.push(tok);
                continue;
            }
        }
        if c == '"' {
            out.push(lex_string(&mut cur));
            continue;
        }
        if c == '\'' {
            out.push(lex_quote(&mut cur));
            continue;
        }
        if is_ident_start(c) {
            out.push(lex_ident(&mut cur));
            continue;
        }
        if c.is_ascii_digit() {
            out.push(lex_number(&mut cur));
            continue;
        }
        // Anything else: one punctuation character.
        let (start, line, col) = (cur.byte_pos(), cur.line, cur.col);
        cur.bump();
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            start,
            end: cur.byte_pos(),
            line,
            col,
        });
    }
    out
}

/// Handle tokens starting `r` / `b`: raw strings, byte strings, byte
/// chars, and raw identifiers. Returns `None` when the prefix is just the
/// start of an ordinary identifier.
fn try_prefixed(cur: &mut Cursor<'_>) -> Option<Token> {
    let c = cur.peek(0)?;
    let (start, line, col) = (cur.byte_pos(), cur.line, cur.col);
    // b'x' byte char.
    if c == 'b' && cur.peek(1) == Some('\'') {
        cur.bump();
        let mut tok = lex_quote(cur);
        tok.start = start;
        tok.col = col;
        tok.text.insert(0, 'b');
        return Some(tok);
    }
    // b"…" byte string.
    if c == 'b' && cur.peek(1) == Some('"') {
        cur.bump();
        let mut tok = lex_string(cur);
        tok.start = start;
        tok.col = col;
        tok.text.insert(0, 'b');
        return Some(tok);
    }
    // r"…" / r#"…"# / br#"…"# raw (byte) strings, and r#ident.
    let hash_at = if c == 'r' {
        1
    } else if c == 'b' && cur.peek(1) == Some('r') {
        2
    } else {
        return None;
    };
    let mut hashes = 0;
    while cur.peek(hash_at + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hash_at + hashes) == Some('"') {
        // Raw string: consume prefix, hashes, opening quote, then scan for
        // `"` followed by the same number of `#`s.
        cur.bump_n(hash_at + hashes + 1);
        loop {
            match cur.peek(0) {
                None => break,
                Some('"') => {
                    let mut matched = 0;
                    while matched < hashes && cur.peek(1 + matched) == Some('#') {
                        matched += 1;
                    }
                    if matched == hashes {
                        cur.bump_n(1 + hashes);
                        break;
                    }
                    cur.bump();
                }
                Some(_) => cur.bump(),
            }
        }
        let end = cur.byte_pos();
        return Some(Token {
            kind: TokenKind::Str,
            text: cur.text[start..end].to_string(),
            start,
            end,
            line,
            col,
        });
    }
    if c == 'r' && hashes == 1 && cur.peek(1 + hashes).is_some_and(is_ident_start) {
        // Raw identifier r#name.
        cur.bump_n(2);
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        let end = cur.byte_pos();
        return Some(Token {
            kind: TokenKind::Ident,
            text: cur.text[start..end].to_string(),
            start,
            end,
            line,
            col,
        });
    }
    None
}

fn lex_string(cur: &mut Cursor<'_>) -> Token {
    let (start, line, col) = (cur.byte_pos(), cur.line, cur.col);
    cur.bump(); // opening quote
    loop {
        match cur.peek(0) {
            None => break,
            Some('\\') => cur.bump_n(2),
            Some('"') => {
                cur.bump();
                break;
            }
            Some(_) => cur.bump(),
        }
    }
    let end = cur.byte_pos();
    Token {
        kind: TokenKind::Str,
        text: cur.text[start..end].to_string(),
        start,
        end,
        line,
        col,
    }
}

/// Lex a token starting with `'`: a char literal or a lifetime.
///
/// Disambiguation follows the language: `'` + `\` is always a char
/// literal; `'` + any char + `'` is a char literal; `'` + ident-start with
/// no closing quote right after is a lifetime (or loop label). This is the
/// rule the old `sanitize()` got wrong — a lifetime whose second character
/// happened to precede a stray quote, or an escaped-quote literal `'\''`,
/// could be mis-lexed as an unterminated char literal that swallowed real
/// code.
fn lex_quote(cur: &mut Cursor<'_>) -> Token {
    let (start, line, col) = (cur.byte_pos(), cur.line, cur.col);
    match (cur.peek(1), cur.peek(2)) {
        // Escaped char literal: consume the escape, then scan to the
        // closing quote ('\u{…}' spans several chars).
        (Some('\\'), _) => {
            cur.bump_n(3); // ' \ <first escape char>
            while cur.peek(0).is_some_and(|c| c != '\'' && c != '\n') {
                cur.bump();
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
        }
        // Ordinary char literal: 'x' (x may itself be ident-start: 'a').
        (Some(_), Some('\'')) => cur.bump_n(3),
        // Lifetime or loop label: 'ident.
        (Some(c), _) if is_ident_start(c) => {
            cur.bump_n(2);
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            let end = cur.byte_pos();
            return Token {
                kind: TokenKind::Lifetime,
                text: cur.text[start..end].to_string(),
                start,
                end,
                line,
                col,
            };
        }
        // Degenerate: a lone quote (invalid Rust); emit as punct-ish char.
        _ => cur.bump(),
    }
    let end = cur.byte_pos();
    Token {
        kind: TokenKind::Char,
        text: cur.text[start..end].to_string(),
        start,
        end,
        line,
        col,
    }
}

fn lex_ident(cur: &mut Cursor<'_>) -> Token {
    let (start, line, col) = (cur.byte_pos(), cur.line, cur.col);
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    let end = cur.byte_pos();
    Token {
        kind: TokenKind::Ident,
        text: cur.text[start..end].to_string(),
        start,
        end,
        line,
        col,
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> Token {
    let (start, line, col) = (cur.byte_pos(), cur.line, cur.col);
    let mut kind = TokenKind::Int;
    let radix_prefixed = cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x') | Some('X') | Some('b') | Some('o'));
    if radix_prefixed {
        cur.bump_n(2);
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            cur.bump();
        }
    } else {
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
        // Fractional part: `.` followed by a digit (so `1..2` and `1.max()`
        // stay integers), or a trailing `1.` not followed by `.`/ident.
        if cur.peek(0) == Some('.') {
            match cur.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    kind = TokenKind::Float;
                    cur.bump();
                    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        cur.bump();
                    }
                }
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    kind = TokenKind::Float;
                    cur.bump();
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(0), Some('e') | Some('E')) {
            let sign = matches!(cur.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                kind = TokenKind::Float;
                cur.bump_n(digit_at + 1);
                while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    cur.bump();
                }
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`…) glued onto the literal.
    if cur.peek(0).is_some_and(is_ident_start) {
        let suffix_start = cur.i;
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        let suffix: String = cur.chars[suffix_start..cur.i]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        if suffix == "f32" || suffix == "f64" {
            kind = TokenKind::Float;
        }
    }
    let end = cur.byte_pos();
    Token {
        kind,
        text: cur.text[start..end].to_string(),
        start,
        end,
        line,
        col,
    }
}

/// Blank the contents of comments and string/char literals, preserving
/// line structure and every other character, so downstream line-oriented
/// consumers (brace counting, grep-style checks) see only structural code.
///
/// Built on [`lex`], so it inherits the lexer's correct handling of
/// lifetimes, escaped-quote char literals, and multi-line raw strings.
pub fn sanitize(text: &str) -> String {
    let tokens = lex(text);
    let mut keep = vec![false; text.len()];
    for t in &tokens {
        if matches!(t.kind, TokenKind::Str | TokenKind::Char) {
            continue;
        }
        for flag in keep.iter_mut().take(t.end).skip(t.start) {
            *flag = true;
        }
    }
    let mut out = String::with_capacity(text.len());
    for (i, c) in text.char_indices() {
        if keep[i] || c == '\n' {
            out.push(c);
        } else if !c.is_whitespace() {
            out.push(' ');
        } else {
            out.push(c);
        }
    }
    out
}
