//! `cargo run -p xtask -- lint` — repository-specific static analysis.
//!
//! Self-contained (std only) source scanner enforcing invariants `clippy`
//! cannot express for this workspace:
//!
//! * **no-panic** — no `.unwrap()` / `.expect(` / `panic!(` in non-test
//!   code of the hot-path crates (`rdram`, `smc`, `baseline`, `faults`,
//!   `checker`, `telemetry`, `campaign`, `tenancy`) or in `sim`'s
//!   runner/CLI.
//!   Known-safe sites
//!   live in the checked-in allowlist `lint-allow.txt`; stale entries are
//!   errors.
//! * **no-float** — no `f64` / `f32` in the same non-test code: cycle
//!   accounting — and metric accumulation in `telemetry` — is integer
//!   arithmetic, floats are for derived reporting only (allowlisted per
//!   site).
//! * **forbid-unsafe** — every `crates/*` crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * **strict-docs** — the hot-path crates and `checker` deny missing
//!   docs.
//! * **vendor-drift** — every `vendor/*` stub keeps its directory name,
//!   declares itself a stand-in, and is referenced by the workspace (or by
//!   another stub); every `path = "vendor/.."` workspace dependency points
//!   at a stub that exists.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must be panic-free and float-free.
const HOT_PATH_CRATES: &[&str] = &[
    "rdram",
    "smc",
    "baseline",
    "faults",
    "checker",
    "telemetry",
    "campaign",
    "tenancy",
];

/// Extra files held to the same standard, with no allowlist escape hatch
/// (entries naming them are reported as errors).
const NO_ALLOWLIST_FILES: &[&str] = &["crates/sim/src/runner.rs", "crates/sim/src/cli.rs"];

/// Crates that must carry `#![deny(missing_docs)]`.
const STRICT_DOCS_CRATES: &[&str] = &[
    "rdram",
    "smc",
    "baseline",
    "faults",
    "checker",
    "telemetry",
    "campaign",
    "tenancy",
];

/// Name of the checked-in allowlist at the repository root.
const ALLOWLIST: &str = "lint-allow.txt";

#[derive(Debug)]
struct Finding {
    rule: &'static str,
    path: String,
    line: usize,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// One `rule | path-suffix | substring` allowlist entry.
#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    substring: String,
    line_no: usize,
    used: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut findings = Vec::new();
    let mut allow = match load_allowlist(&root) {
        Ok(entries) => entries,
        Err(msg) => {
            eprintln!("xtask lint: {msg}");
            return ExitCode::FAILURE;
        }
    };

    scan_hot_paths(&root, &mut findings);
    check_forbid_unsafe(&root, &mut findings);
    check_strict_docs(&root, &mut findings);
    check_vendor_drift(&root, &mut findings);

    // Apply the allowlist, tracking which entries earned their keep.
    let findings: Vec<Finding> = findings
        .into_iter()
        .filter(|f| !allowed(f, &mut allow))
        .collect();

    let mut failed = false;
    for f in &findings {
        eprintln!("xtask lint: {f}");
        failed = true;
    }
    for e in &allow {
        if !e.used {
            eprintln!(
                "xtask lint: {ALLOWLIST}:{}: stale allowlist entry `{} | {} | {}` matched nothing — remove it",
                e.line_no, e.rule, e.path_suffix, e.substring
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    }
}

fn allowed(f: &Finding, allow: &mut [AllowEntry]) -> bool {
    // sim's runner/CLI have no escape hatch: burned down, not allowlisted.
    if NO_ALLOWLIST_FILES.iter().any(|p| f.path.ends_with(p)) {
        return false;
    }
    for e in allow.iter_mut() {
        if e.rule == f.rule && f.path.ends_with(&e.path_suffix) && f.message.contains(&e.substring)
        {
            e.used = true;
            return true;
        }
    }
    false
}

fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join(ALLOWLIST);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, '|').map(str::trim).collect();
        let [rule, path_suffix, substring] = parts.as_slice() else {
            return Err(format!(
                "{ALLOWLIST}:{}: expected `rule | path-suffix | substring`, got {line:?}",
                i + 1
            ));
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path_suffix: path_suffix.to_string(),
            substring: substring.to_string(),
            line_no: i + 1,
            used: false,
        });
    }
    Ok(entries)
}

/// Recursively collect `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn scan_hot_paths(root: &Path, findings: &mut Vec<Finding>) {
    let mut files = Vec::new();
    for krate in HOT_PATH_CRATES {
        rust_files(&root.join("crates").join(krate).join("src"), &mut files);
    }
    for extra in NO_ALLOWLIST_FILES {
        files.push(root.join(extra));
    }
    for file in files {
        // The float rule targets cycle accounting inside the hot-path
        // crates; sim's runner/CLI legitimately derive float bandwidth
        // percentages, so only the panic rule extends to them.
        let floats = !NO_ALLOWLIST_FILES
            .iter()
            .any(|p| file.ends_with(Path::new(p)));
        scan_file(root, &file, floats, findings);
    }
}

/// Net brace depth of a sanitized line (string and comment contents have
/// already been blanked by [`sanitize`], so every brace is structural).
fn brace_delta(line: &str) -> i64 {
    let mut depth = 0i64;
    for c in line.chars() {
        match c {
            '{' => depth += 1,
            '}' => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Replace the contents of comments and string/char literals with spaces,
/// preserving line structure, so brace counting and token scanning see
/// only real code. Handles line comments, nested block comments, ordinary
/// and byte strings with escapes, raw strings with any number of `#`s
/// (which may span lines — the failure mode of per-line tracking), and
/// char literals vs lifetimes.
fn sanitize(text: &str) -> String {
    let b: Vec<char> = text.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < n {
        let c = b[i];
        // Line comment: drop to end of line.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < n && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nesting-aware.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1i64;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: `r"…"` / `r#"…"#` / `br#"…"#`, any hash count, not
        // preceded by an identifier character.
        if c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')) {
            let ident_before = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
            let r_at = if c == 'b' { i + 1 } else { i };
            let mut hashes = 0usize;
            let mut k = r_at + 1;
            while b.get(k) == Some(&'#') {
                hashes += 1;
                k += 1;
            }
            if !ident_before && b.get(k) == Some(&'"') {
                i = k + 1;
                while i < n {
                    if b[i] == '"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        i += 1 + hashes;
                        break;
                    }
                    if b[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary (or byte) string, escape-aware.
        if c == '"' {
            i += 1;
            while i < n {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        out.push('\n');
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }
        // Char literal (`'x'` / `'\x'`) vs lifetime (`'a`).
        if c == '\'' {
            if b.get(i + 1) == Some(&'\\') {
                i += 2;
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            if b.get(i + 2) == Some(&'\'') {
                i += 3;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Whether `needle` occurs in `hay` delimited by non-identifier characters.
fn has_token(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0
            || !hay[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !hay[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn scan_file(root: &Path, file: &Path, floats: bool, findings: &mut Vec<Finding>) {
    let Ok(text) = fs::read_to_string(file) else {
        findings.push(Finding {
            rule: "no-panic",
            path: file.display().to_string(),
            line: 0,
            message: "cannot read file".into(),
        });
        return;
    };
    let rel = file
        .strip_prefix(root)
        .unwrap_or(file)
        .display()
        .to_string();
    // Strip comments and string/char literals once for the whole file:
    // brace depth and pattern matching then see only structural code, and
    // multi-line raw strings (e.g. JSON fixtures) can no longer desync the
    // `#[cfg(test)]` block tracker.
    let clean = sanitize(&text);
    let mut pending_cfg_test = false;
    let mut test_depth: i64 = -1; // -1 = not inside a #[cfg(test)] block
    for ((i, line), code) in text.lines().enumerate().zip(clean.lines()) {
        if test_depth >= 0 {
            test_depth += brace_delta(code);
            if test_depth <= 0 {
                test_depth = -1;
            }
            continue;
        }
        if code.trim() == "#[cfg(test)]" {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            pending_cfg_test = false;
            let delta = brace_delta(code);
            if delta > 0 {
                test_depth = delta;
                continue;
            }
            // `#[cfg(test)]` on a braceless item (e.g. a `use`): skip just
            // this line.
            continue;
        }
        if code.trim().is_empty() {
            continue;
        }
        for pat in [".unwrap()", ".expect(", "panic!("] {
            if code.contains(pat) {
                findings.push(Finding {
                    rule: "no-panic",
                    path: rel.clone(),
                    line: i + 1,
                    message: format!("`{pat}` in non-test hot-path code: {}", line.trim()),
                });
            }
        }
        for ty in ["f64", "f32"] {
            if floats && has_token(code, ty) {
                findings.push(Finding {
                    rule: "no-float",
                    path: rel.clone(),
                    line: i + 1,
                    message: format!(
                        "`{ty}` in non-test hot-path code (cycle accounting is integer-only): {}",
                        line.trim()
                    ),
                });
            }
        }
    }
}

fn check_forbid_unsafe(root: &Path, findings: &mut Vec<Finding>) {
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs.into_iter().filter(|d| d.is_dir()) {
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        let entry = if lib.is_file() { lib } else { main };
        let rel = entry
            .strip_prefix(root)
            .unwrap_or(&entry)
            .display()
            .to_string();
        match fs::read_to_string(&entry) {
            Ok(text) if text.contains("#![forbid(unsafe_code)]") => {}
            Ok(_) => findings.push(Finding {
                rule: "forbid-unsafe",
                path: rel,
                line: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]`".into(),
            }),
            Err(e) => findings.push(Finding {
                rule: "forbid-unsafe",
                path: rel,
                line: 0,
                message: format!("cannot read crate root: {e}"),
            }),
        }
    }
}

fn check_strict_docs(root: &Path, findings: &mut Vec<Finding>) {
    for krate in STRICT_DOCS_CRATES {
        let lib = root.join("crates").join(krate).join("src/lib.rs");
        let rel = lib.strip_prefix(root).unwrap_or(&lib).display().to_string();
        match fs::read_to_string(&lib) {
            Ok(text) if text.contains("#![deny(missing_docs)]") => {}
            Ok(_) => findings.push(Finding {
                rule: "strict-docs",
                path: rel,
                line: 1,
                message: "hot-path crate must carry `#![deny(missing_docs)]`".into(),
            }),
            Err(e) => findings.push(Finding {
                rule: "strict-docs",
                path: rel,
                line: 0,
                message: format!("cannot read crate root: {e}"),
            }),
        }
    }
}

fn check_vendor_drift(root: &Path, findings: &mut Vec<Finding>) {
    let vendor = root.join("vendor");
    let root_manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let Ok(entries) = fs::read_dir(&vendor) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    // Concatenated manifests of all stubs, for intra-vendor references
    // (serde_derive is reachable only through serde's path dependency).
    let vendor_manifests: String = dirs
        .iter()
        .filter(|d| d.is_dir())
        .filter_map(|d| fs::read_to_string(d.join("Cargo.toml")).ok())
        .collect();
    for dir in dirs.iter().filter(|d| d.is_dir()) {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let rel = format!("vendor/{name}");
        let manifest = fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
        if !manifest.contains(&format!("name = \"{name}\"")) {
            findings.push(Finding {
                rule: "vendor-drift",
                path: format!("{rel}/Cargo.toml"),
                line: 1,
                message: format!("package name must match directory name `{name}`"),
            });
        }
        let referenced = root_manifest.contains(&format!("vendor/{name}\""))
            || vendor_manifests.contains(&format!("../{name}\""));
        if !referenced {
            findings.push(Finding {
                rule: "vendor-drift",
                path: format!("{rel}/Cargo.toml"),
                line: 1,
                message: "stub is referenced by neither the workspace manifest nor another stub"
                    .into(),
            });
        }
        match fs::read_to_string(dir.join("src/lib.rs")) {
            Ok(text) if text.contains("stand-in") => {}
            Ok(_) => findings.push(Finding {
                rule: "vendor-drift",
                path: format!("{rel}/src/lib.rs"),
                line: 1,
                message: "stub must document itself as an offline stand-in".into(),
            }),
            Err(e) => findings.push(Finding {
                rule: "vendor-drift",
                path: format!("{rel}/src/lib.rs"),
                line: 0,
                message: format!("cannot read stub root: {e}"),
            }),
        }
    }
    // Reverse direction: every vendor path the workspace names must exist.
    for line in root_manifest.lines() {
        if let Some(pos) = line.find("path = \"vendor/") {
            let rest = &line[pos + "path = \"".len()..];
            if let Some(end) = rest.find('"') {
                let path = &rest[..end];
                if !root.join(path).join("Cargo.toml").is_file() {
                    findings.push(Finding {
                        rule: "vendor-drift",
                        path: "Cargo.toml".into(),
                        line: 1,
                        message: format!("workspace references missing stub `{path}`"),
                    });
                }
            }
        }
    }
}
