//! CLI driver for the repository lint: argument parsing and report
//! emission live here; all analysis is in the `xtask` library.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::report;

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--format text|json] [--sarif <path>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        return usage();
    }
    let mut format = "text".to_string();
    let mut sarif_out: Option<PathBuf> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                _ => return usage(),
            },
            "--sarif" => match it.next() {
                Some(p) => sarif_out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let outcome = match xtask::run_lint(&repo_root()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("xtask lint: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &sarif_out {
        if let Err(e) = std::fs::write(path, report::sarif(&outcome.findings)) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if format == "json" {
        print!("{}", report::findings_json(&outcome.findings));
    }

    if outcome.findings.is_empty() {
        if format == "text" {
            println!("xtask lint: OK");
        }
        ExitCode::SUCCESS
    } else {
        for f in &outcome.findings {
            eprintln!("xtask lint: {f}");
        }
        ExitCode::FAILURE
    }
}
