//! The span-aware rule engine: source files, findings, and the token
//! region analyses every rule shares.
//!
//! A [`SourceFile`] owns the text and token stream of one `.rs` file plus
//! two derived per-token masks:
//!
//! * **test regions** — tokens inside a `#[cfg(test)]` item (module, fn,
//!   or braceless item). Rules never fire inside tests.
//! * **float-ok regions** — tokens inside a fn item whose *signature*
//!   mentions `f32`/`f64` (a declared float boundary: display derivation
//!   or IEEE storage accessors), or inside a `const`/`static` item with an
//!   explicit float type ascription. The no-float rule only fires outside
//!   these, which is what lets most of the old file-wide allowlist entries
//!   burn down.

use std::fmt;

use crate::lexer::{lex, Token};

/// One finding a rule produced: file, position, rule id, message.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule identifier (e.g. `no-panic`, `cycle-integrity`).
    pub rule: &'static str,
    /// Repository-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description, including the offending source line so
    /// allowlist substring matching keeps working.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}:{}: {}",
            self.rule, self.path, self.line, self.col, self.message
        )
    }
}

/// A lexed source file with the region masks rules consult.
pub struct SourceFile {
    /// Repository-relative path used in findings.
    pub rel: String,
    /// Raw text.
    pub text: String,
    /// Token stream from [`lex`].
    pub tokens: Vec<Token>,
    /// `mask[i]` — token `i` is inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// `mask[i]` — token `i` is inside a declared float boundary.
    pub float_ok: Vec<bool>,
    lines: Vec<String>,
}

impl SourceFile {
    /// Lex `text` and compute the region masks.
    pub fn new(rel: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let tokens = lex(&text);
        let in_test = test_mask(&tokens);
        let float_ok = float_ok_mask(&tokens);
        let lines = text.lines().map(str::to_string).collect();
        SourceFile {
            rel: rel.into(),
            text,
            tokens,
            in_test,
            float_ok,
            lines,
        }
    }

    /// The trimmed text of 1-based line `line` (empty when out of range).
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.trim())
    }

    /// Construct a finding anchored at token `i`.
    pub fn finding(&self, rule: &'static str, i: usize, message: String) -> Finding {
        let (line, col) = self.tokens.get(i).map_or((0, 0), |t| (t.line, t.col));
        Finding {
            rule,
            path: self.rel.clone(),
            line,
            col,
            message,
        }
    }
}

/// Does `tokens[i..]` start the exact sequence `#[cfg(test)]`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let pats: [&dyn Fn(&Token) -> bool; 7] = [
        &|t| t.is_punct('#'),
        &|t| t.is_punct('['),
        &|t| t.is_ident("cfg"),
        &|t| t.is_punct('('),
        &|t| t.is_ident("test"),
        &|t| t.is_punct(')'),
        &|t| t.is_punct(']'),
    ];
    pats.iter()
        .enumerate()
        .all(|(k, p)| tokens.get(i + k).is_some_and(p))
}

/// Skip a balanced `#[…]` attribute starting at `i` (which must point at
/// `#`); returns the index one past the closing `]`.
fn skip_attr(tokens: &[Token], mut i: usize) -> usize {
    debug_assert!(tokens[i].is_punct('#'));
    i += 1;
    if tokens.get(i).is_some_and(|t| t.is_punct('[')) {
        let mut depth = 0i64;
        while i < tokens.len() {
            if tokens[i].is_punct('[') {
                depth += 1;
            } else if tokens[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
    }
    i
}

/// Extent of the item starting at `i` (after its attributes): through the
/// matching `}` of its first brace block, or through the terminating `;`
/// for braceless items. Returns the index one past the item.
fn item_extent(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            let mut depth = 0i64;
            while i < tokens.len() {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return i;
        }
        if tokens[i].is_punct(';') {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Per-token `#[cfg(test)]` mask.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && is_cfg_test_attr(tokens, i) {
            let attr_start = i;
            // Skip this and any further attributes on the same item.
            let mut j = skip_attr(tokens, i);
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            let end = item_extent(tokens, j);
            for flag in mask.iter_mut().take(end).skip(attr_start) {
                *flag = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Per-token float-boundary mask: fn items whose signature mentions
/// `f32`/`f64`, and `const`/`static` items with a float type ascription.
fn float_ok_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("fn") {
            // Signature: everything up to the body `{` or a trait-decl `;`.
            let mut j = i + 1;
            let mut has_float = false;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].is_ident("f64") || tokens[j].is_ident("f32") {
                    has_float = true;
                }
                j += 1;
            }
            if has_float {
                let end = item_extent(tokens, j);
                for flag in mask.iter_mut().take(end).skip(i) {
                    *flag = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        if (t.is_ident("const") || t.is_ident("static"))
            && !tokens.get(i + 1).is_some_and(|t| t.is_ident("fn"))
        {
            // const NAME: Type = …; — float-ok when the ascription between
            // `:` and `=` names a float type.
            let mut j = i + 1;
            let mut has_float = false;
            let mut seen_colon = false;
            while j < tokens.len() && !tokens[j].is_punct(';') && !tokens[j].is_punct('{') {
                if tokens[j].is_punct(':') {
                    seen_colon = true;
                }
                if tokens[j].is_punct('=') {
                    break;
                }
                if seen_colon && (tokens[j].is_ident("f64") || tokens[j].is_ident("f32")) {
                    has_float = true;
                }
                j += 1;
            }
            if has_float {
                let end = item_extent(tokens, j);
                for flag in mask.iter_mut().take(end).skip(i) {
                    *flag = true;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// One `match` expression found in a token stream: the span of its
/// scrutinee, and for each arm the span of its pattern (including any
/// guard) and the index of the `_` token when the whole arm is a bare
/// wildcard.
pub struct MatchExpr {
    /// Token range of the scrutinee (exclusive of `match` and `{`).
    pub scrutinee: (usize, usize),
    /// Pattern token ranges, one per arm (pattern + guard, up to `=>`).
    pub arm_patterns: Vec<(usize, usize)>,
    /// Token indices of bare `_ =>` wildcard arms.
    pub wildcard_arms: Vec<usize>,
    /// Token index one past the match's closing `}`.
    pub end: usize,
}

/// Find every `match` expression in `tokens`, outermost and nested alike.
///
/// Arm patterns are tracked at the match's own brace depth with separate
/// paren/bracket accounting, so a `_` inside a tuple pattern or a nested
/// match is not mistaken for a bare wildcard arm of this match.
pub fn find_matches(tokens: &[Token]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("match") {
            continue;
        }
        // Don't treat `.match`-like method positions (none in Rust) or the
        // struct-field use of the word as a match; requiring a following
        // block is enough in practice.
        let Some(body_open) = scrutinee_end(tokens, i + 1) else {
            continue;
        };
        let mut arms = Vec::new();
        let mut wildcards = Vec::new();
        let mut j = body_open + 1;
        let mut brace = 1i64; // depth relative to the match block
        let mut paren = 0i64;
        let mut pat_start = j;
        let mut in_pattern = true;
        while j < tokens.len() && brace > 0 {
            let t = &tokens[j];
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
                // A `{…}` arm body just closed at depth 1: the next arm's
                // pattern starts after an optional comma.
                if brace == 1 && !in_pattern {
                    in_pattern = true;
                    pat_start = j + 1;
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if in_pattern
                && brace == 1
                && paren == 0
                && t.is_punct('=')
                && tokens.get(j + 1).is_some_and(|n| n.is_punct('>'))
            {
                // End of a pattern. A bare wildcard arm is a lone `_`
                // (ignoring a leading `,`).
                let pat: Vec<usize> = (pat_start..j)
                    .filter(|&k| !tokens[k].is_punct(','))
                    .collect();
                arms.push((pat_start, j));
                if pat.len() == 1 && tokens[pat[0]].is_ident("_") {
                    wildcards.push(pat[0]);
                }
                in_pattern = false;
                j += 2;
                // Expression bodies run to the `,` at this depth; block
                // bodies are handled by the brace tracking above.
                if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                    continue;
                }
                let mut p2 = 0i64;
                let mut b2 = 0i64;
                while j < tokens.len() {
                    let u = &tokens[j];
                    if u.is_punct('(') || u.is_punct('[') {
                        p2 += 1;
                    } else if u.is_punct(')') || u.is_punct(']') {
                        p2 -= 1;
                    } else if u.is_punct('{') {
                        b2 += 1;
                    } else if u.is_punct('}') {
                        if b2 == 0 {
                            break; // closes the match itself
                        }
                        b2 -= 1;
                    } else if u.is_punct(',') && p2 == 0 && b2 == 0 {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                in_pattern = true;
                pat_start = j;
                continue;
            }
            j += 1;
        }
        out.push(MatchExpr {
            scrutinee: (i + 1, body_open),
            arm_patterns: arms,
            wildcard_arms: wildcards,
            end: j.min(tokens.len()),
        });
    }
    out
}

/// Index of the `{` opening the match body, scanning past any parens /
/// brackets in the scrutinee. Struct literals cannot appear un-parenthesised
/// in a match scrutinee, so the first `{` at depth zero is the body.
fn scrutinee_end(tokens: &[Token], mut i: usize) -> Option<usize> {
    let mut depth = 0i64;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return Some(i);
        } else if t.is_punct(';') && depth == 0 {
            return None; // `match` used as an identifier-ish thing; bail
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokenKind;

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::new("x.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn float_mask_scopes_to_signatures() {
        let src = "fn ratio(&self) -> f64 { self.a as f64 / self.b as f64 }\nfn cycles(&self) -> u64 { self.c }\nconst NS: f64 = 2.5;\nstruct S { x: f64 }\n";
        let f = SourceFile::new("x.rs", src);
        let flagged: Vec<&str> = f
            .tokens
            .iter()
            .zip(&f.float_ok)
            .filter(|(t, &ok)| (t.is_ident("f64") || t.kind == TokenKind::Float) && !ok)
            .map(|(t, _)| t.text.as_str())
            .collect();
        // Only the struct field's f64 is outside a float boundary.
        assert_eq!(flagged, vec!["f64"]);
    }

    #[test]
    fn match_finder_sees_wildcards_and_tuple_patterns() {
        let src = "fn f(x: Option<Dir>, d: Dir) -> u64 { match (x, d) { (Some(Dir::Write), Dir::Read) => 1, _ => 0, } }";
        let f = SourceFile::new("x.rs", src);
        let ms = find_matches(&f.tokens);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arm_patterns.len(), 2);
        assert_eq!(ms[0].wildcard_arms.len(), 1);
    }

    #[test]
    fn nested_match_wildcard_is_not_attributed_to_outer() {
        let src = "fn f(a: u8) -> u8 { match a { 1 => match b { C::X => 1, _ => 2, }, 2 => 9, other => other, } }";
        let f = SourceFile::new("x.rs", src);
        let ms = find_matches(&f.tokens);
        assert_eq!(ms.len(), 2);
        let outer = &ms[0];
        let inner = &ms[1];
        assert_eq!(outer.wildcard_arms.len(), 0);
        assert_eq!(inner.wildcard_arms.len(), 1);
        assert_eq!(outer.arm_patterns.len(), 3);
    }
}
