//! The checked-in suppression list, `lint-allow.txt`.
//!
//! Grammar (unchanged across lint engines): one entry per line,
//! `rule | path-suffix | substring`, `#` comments, blank lines ignored. A
//! finding is suppressed when its rule matches exactly, its path ends
//! with the suffix, and its message contains the substring. Entries that
//! suppress nothing are *stale* and become findings themselves, so the
//! list can only shrink as the code it covers is fixed.

use crate::engine::Finding;

/// One parsed allowlist entry.
#[derive(Debug)]
pub struct AllowEntry {
    /// Rule id the entry applies to.
    pub rule: String,
    /// Path suffix the finding's file must end with.
    pub path_suffix: String,
    /// Substring the finding's message must contain.
    pub substring: String,
    /// 1-based line in the allowlist file (for stale reports).
    pub line_no: usize,
    /// Whether the entry suppressed at least one finding.
    pub used: bool,
}

/// Parse allowlist text. Errors name the offending line.
pub fn parse(text: &str, file_label: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, '|').map(str::trim).collect();
        let [rule, path_suffix, substring] = parts.as_slice() else {
            return Err(format!(
                "{file_label}:{}: expected `rule | path-suffix | substring`, got {line:?}",
                i + 1
            ));
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path_suffix: path_suffix.to_string(),
            substring: substring.to_string(),
            line_no: i + 1,
            used: false,
        });
    }
    Ok(entries)
}

/// Apply the allowlist: drop suppressed findings (marking entries used),
/// then append one `stale-allowlist` finding per unused entry.
///
/// `no_allowlist_paths` are files with no escape hatch — entries naming
/// them never match, so they both fail to suppress and go stale.
pub fn apply(
    findings: Vec<Finding>,
    entries: &mut [AllowEntry],
    no_allowlist_paths: &[&str],
    allowlist_label: &str,
) -> Vec<Finding> {
    let mut kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            if no_allowlist_paths.iter().any(|p| f.path.ends_with(p)) {
                return true;
            }
            for e in entries.iter_mut() {
                if e.rule == f.rule
                    && f.path.ends_with(&e.path_suffix)
                    && f.message.contains(&e.substring)
                {
                    e.used = true;
                    return false;
                }
            }
            true
        })
        .collect();
    for e in entries.iter().filter(|e| !e.used) {
        kept.push(Finding {
            rule: "stale-allowlist",
            path: allowlist_label.to_string(),
            line: e.line_no,
            col: 1,
            message: format!(
                "stale allowlist entry `{} | {} | {}` matched nothing — remove it",
                e.rule, e.path_suffix, e.substring
            ),
        });
    }
    kept
}
