//! Known-good: ordered containers throughout. The word "Instantiate" in
//! prose shares a prefix with `Instant` and must NOT fire — the rule is
//! token-exact, not substring.

use std::collections::BTreeMap;

/// Instantiate a tally with deterministic iteration order.
pub fn tally(xs: &[u8]) -> BTreeMap<u8, u64> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _ = Instant::now();
    }
}
