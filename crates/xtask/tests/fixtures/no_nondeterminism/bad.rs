//! Known-bad: randomized containers and wall-clock reads in a path that
//! feeds serialized output.

use std::collections::HashMap;
use std::time::Instant;

/// Randomized iteration order leaks into whatever serializes this map —
/// every `HashMap` token must fire `no-nondeterminism`.
pub fn tally(xs: &[u8]) -> HashMap<u8, u64> {
    let started = Instant::now();
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    let _ = started.elapsed();
    m
}
