//! Known-good: errors are values; `.unwrap()` only in prose, strings, and
//! tests — none of which may fire `no-panic`.

/// Pops the next queued command if any.
pub fn next(q: &mut Vec<u64>) -> Option<u64> {
    q.pop()
}

/// Mentions .unwrap() in a comment and returns it inside a string.
pub fn advice() -> &'static str {
    // Callers who .unwrap() this are on their own.
    "never .unwrap() a device response"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1u8).unwrap();
        assert!(std::panic::catch_unwind(|| panic!("also fine here")).is_err());
    }
}
