//! Known-bad: panic paths in non-test hot-path code.

/// Pops the next queued command or dies — must fire `no-panic`.
pub fn next(q: &mut Vec<u64>) -> u64 {
    q.pop().unwrap()
}

/// Explains itself away but still aborts — must fire `no-panic`.
pub fn budget(words: u64, limit: u64) -> u64 {
    if words > limit {
        panic!("over budget");
    }
    words
}

/// Unfinished path left in shipping code — must fire `no-panic`.
pub fn later() {
    todo!("write the retire path")
}
