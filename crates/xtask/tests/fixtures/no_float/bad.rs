//! Known-bad: float math leaking into integer cycle accounting.

/// Average cycles per word computed in floating point. Neither the
/// signature nor any const declares a float boundary, so the two `f64`
/// tokens and the `1000.0` literal must all fire `no-float`.
pub fn avg_milli(cycles: u64, words: u64) -> u64 {
    let ratio = cycles as f64 / words as f64;
    (ratio * 1000.0) as u64
}
