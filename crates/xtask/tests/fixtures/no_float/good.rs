//! Known-good: integer accounting, with floats only behind declared
//! boundaries (a float-returning signature, a float-ascribed const).

/// Milli-percent of peak from integer counters — the hot-path idiom.
pub fn milli_percent(n: u64, d: u64) -> u64 {
    if d == 0 {
        0
    } else {
        n.saturating_mul(100_000) / d
    }
}

/// Display derivation: `f64` in the signature declares the boundary, so
/// the float math in the body is allowed.
pub fn as_gbytes_per_s(bytes_per_cycle: u64) -> f64 {
    bytes_per_cycle as f64 * 1.6
}

/// Float-ascribed const is a declared boundary too.
pub const CYCLE_NS: f64 = 1.25;

/// Range and method calls on integers must not be mis-lexed as floats.
pub fn not_floats(n: u64) -> u64 {
    (0..2u64).map(|i| i.max(1)).sum::<u64>() + n.min(7)
}
