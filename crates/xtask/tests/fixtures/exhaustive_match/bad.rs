//! Known-bad: a `_ =>` wildcard arm in a match over a protocol enum.

/// Data transfer direction — one of the protocol enums.
pub enum Dir {
    /// Device-to-controller transfer.
    Read,
    /// Controller-to-device transfer.
    Write,
}

/// Adding a third direction would be silently swallowed by the wildcard —
/// must fire `exhaustive-match`.
pub fn is_read(d: Dir) -> bool {
    match d {
        Dir::Read => true,
        _ => false,
    }
}
