//! Known-good: explicit arms over protocol enums; wildcards over
//! internal (non-protocol) enums stay allowed.

/// Data transfer direction — one of the protocol enums.
pub enum Dir {
    /// Device-to-controller transfer.
    Read,
    /// Controller-to-device transfer.
    Write,
}

/// Every variant named: a new one is a compile error here.
pub fn is_read(d: Dir) -> bool {
    match d {
        Dir::Read => true,
        Dir::Write => false,
    }
}

/// An internal pipeline stage, not a protocol enum.
pub enum Stage {
    /// Fetch.
    Fetch,
    /// Decode.
    Decode,
    /// Retire.
    Retire,
}

/// Wildcards over non-protocol enums are fine.
pub fn is_fetch(s: Stage) -> bool {
    match s {
        Stage::Fetch => true,
        _ => false,
    }
}
