//! Known-bad: unchecked arithmetic on cycle-carrying values and a
//! truncating cast, in what stands in for a device hot path.

/// `start` is cycle-carrying, so the bare `+` must fire.
pub fn end_of(start: u64, len: u64) -> u64 {
    start + len
}

/// Looking through a field read: `t.t_rw` is cycle-carrying.
pub fn with_turnaround(free: u64, t: &Timing) -> u64 {
    free + t.t_rw
}

/// Truncating `as` cast on a cycle count must fire.
pub fn low_bits(cycle: u64) -> u32 {
    cycle as u32
}
