//! Known-good: saturating cycle math, widening casts, and non-cycle
//! arithmetic that the rule must leave alone.

/// The saturating form of the bad fixture's `start + len`.
pub fn end_of(start: u64, len: u64) -> u64 {
    start.saturating_add(len)
}

/// Saturating through the field read too.
pub fn with_turnaround(free: u64, t: &Timing) -> u64 {
    free.saturating_add(t.t_rw)
}

/// Widening never truncates.
pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

/// Arithmetic on non-cycle identifiers stays allowed.
pub fn words_per_packet(width_bytes: u64, word_bytes: u64) -> u64 {
    width_bytes * 8 / word_bytes
}

/// Accumulator updates (`+=`) are bounded by run length, not flagged.
pub fn accumulate(busy_cycles: &mut u64, len: u64) {
    *busy_cycles += len;
}
