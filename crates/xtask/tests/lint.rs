//! The fixture corpus: every token-level rule family must fire on its
//! known-bad fixture and stay silent on its known-good one, the lexer
//! must survive the char-literal/lifetime cases that broke the old
//! substring scanner, stale allowlist entries must become findings, and
//! the SARIF report must have the advertised 2.1.0 shape.

use xtask::engine::Finding;
use xtask::lexer::{lex, sanitize, TokenKind};
use xtask::{allowlist, report, scan_source, RuleSet};

fn scan(rel: &str, text: &str, rules: RuleSet) -> Vec<Finding> {
    scan_source(rel, text, rules)
}

fn family(bad: &str, good: &str, rules: RuleSet, rule_id: &str) {
    let bad_findings = scan("fixtures/bad.rs", bad, rules);
    assert!(
        !bad_findings.is_empty(),
        "`{rule_id}` must fire on its known-bad fixture"
    );
    assert!(
        bad_findings.iter().all(|f| f.rule == rule_id),
        "only `{rule_id}` findings expected, got {bad_findings:?}"
    );
    assert!(
        bad_findings.iter().all(|f| f.line > 0 && f.col > 0),
        "findings carry 1-based line/column positions: {bad_findings:?}"
    );
    let good_findings = scan("fixtures/good.rs", good, rules);
    assert!(
        good_findings.is_empty(),
        "`{rule_id}` must stay silent on its known-good fixture, got {good_findings:?}"
    );
}

#[test]
fn no_panic_fixtures() {
    family(
        include_str!("fixtures/no_panic/bad.rs"),
        include_str!("fixtures/no_panic/good.rs"),
        RuleSet {
            no_panic: true,
            ..RuleSet::default()
        },
        "no-panic",
    );
    // Three distinct panic forms in the bad fixture.
    let f = scan(
        "bad.rs",
        include_str!("fixtures/no_panic/bad.rs"),
        RuleSet {
            no_panic: true,
            ..RuleSet::default()
        },
    );
    assert_eq!(f.len(), 3, "{f:?}");
}

#[test]
fn no_float_fixtures() {
    family(
        include_str!("fixtures/no_float/bad.rs"),
        include_str!("fixtures/no_float/good.rs"),
        RuleSet {
            no_float: true,
            ..RuleSet::default()
        },
        "no-float",
    );
    // Two `f64` tokens plus the `1000.0` literal.
    let f = scan(
        "bad.rs",
        include_str!("fixtures/no_float/bad.rs"),
        RuleSet {
            no_float: true,
            ..RuleSet::default()
        },
    );
    assert_eq!(f.len(), 3, "{f:?}");
}

#[test]
fn no_nondeterminism_fixtures() {
    family(
        include_str!("fixtures/no_nondeterminism/bad.rs"),
        include_str!("fixtures/no_nondeterminism/good.rs"),
        RuleSet {
            no_nondeterminism: true,
            ..RuleSet::default()
        },
        "no-nondeterminism",
    );
}

#[test]
fn cycle_integrity_fixtures() {
    family(
        include_str!("fixtures/cycle_integrity/bad.rs"),
        include_str!("fixtures/cycle_integrity/good.rs"),
        RuleSet {
            cycle_integrity: true,
            ..RuleSet::default()
        },
        "cycle-integrity",
    );
    // Two unchecked ops plus one truncating cast.
    let f = scan(
        "bad.rs",
        include_str!("fixtures/cycle_integrity/bad.rs"),
        RuleSet {
            cycle_integrity: true,
            ..RuleSet::default()
        },
    );
    assert_eq!(f.len(), 3, "{f:?}");
    assert!(f.iter().any(|f| f.message.contains("truncating `as u32`")));
}

#[test]
fn exhaustive_match_fixtures() {
    family(
        include_str!("fixtures/exhaustive_match/bad.rs"),
        include_str!("fixtures/exhaustive_match/good.rs"),
        RuleSet {
            exhaustive_match: true,
            ..RuleSet::default()
        },
        "exhaustive-match",
    );
}

#[test]
fn every_family_on_the_full_ruleset_stays_clean_on_good_fixtures() {
    // The good fixtures are also clean under ALL families at once — no
    // rule family trips over another family's legitimate idiom.
    for good in [
        include_str!("fixtures/no_panic/good.rs"),
        include_str!("fixtures/no_float/good.rs"),
        include_str!("fixtures/no_nondeterminism/good.rs"),
        include_str!("fixtures/cycle_integrity/good.rs"),
        include_str!("fixtures/exhaustive_match/good.rs"),
    ] {
        let f = scan("fixtures/good.rs", good, RuleSet::all());
        assert!(f.is_empty(), "{f:?}");
    }
}

// ---- lexer regressions: the cases that broke the substring scanner ----

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn first<'a>(xs: &'a [u64]) -> &'a u64 { &xs[0] }";
    let toks = lex(src);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .collect();
    assert_eq!(lifetimes.len(), 3, "{toks:?}");
    assert!(lifetimes.iter().all(|t| t.text == "'a"));
    assert!(!toks.iter().any(|t| t.kind == TokenKind::Char));
    // sanitize() must keep the lifetimes (they are code, not literals).
    assert_eq!(sanitize(src), src);
}

#[test]
fn escaped_quote_char_literal_does_not_derail_the_scan() {
    // The historical sanitize() bug: `'\''` opened a "char literal" that
    // never closed, hiding everything after it. The `.unwrap()` after the
    // literal must still be visible to the rules.
    let src = "fn f(x: Option<u8>) -> u8 { let _q = '\\''; x.unwrap() }";
    let f = scan(
        "x.rs",
        src,
        RuleSet {
            no_panic: true,
            ..RuleSet::default()
        },
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains(".unwrap()"));
    // And the literal itself is blanked, not the code around it.
    let clean = sanitize(src);
    assert!(clean.contains("unwrap"));
    assert!(!clean.contains("\\'"));
}

#[test]
fn lifetime_after_char_literal_mix() {
    // `'x'` (char), `'a` (lifetime), and a string containing an
    // apostrophe, all on one line.
    let src = "fn g<'a>(c: char, s: &'a str) -> bool { c == 'x' && s == \"it's\" }";
    let toks = lex(src);
    assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    assert_eq!(
        toks.iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count(),
        2
    );
}

// ---- allowlist: stale entries fail the lint ---------------------------

#[test]
fn stale_allowlist_entries_become_findings() {
    let mut entries = allowlist::parse(
        "no-panic | src/dead.rs | long gone\nno-panic | src/live.rs | unwrap\n",
        "lint-allow.txt",
    )
    .unwrap();
    let findings = vec![Finding {
        rule: "no-panic",
        path: "crates/x/src/live.rs".into(),
        line: 3,
        col: 7,
        message: "`.unwrap()` in non-test hot-path code: x.unwrap()".into(),
    }];
    let kept = allowlist::apply(findings, &mut entries, &[], "lint-allow.txt");
    // The live finding is suppressed; the dead entry surfaces as stale.
    assert_eq!(kept.len(), 1, "{kept:?}");
    assert_eq!(kept[0].rule, "stale-allowlist");
    assert_eq!(kept[0].line, 1, "stale report points at the entry's line");
    assert!(kept[0].message.contains("src/dead.rs"));
}

#[test]
fn no_allowlist_files_cannot_be_suppressed() {
    let mut entries =
        allowlist::parse("no-panic | src/runner.rs | unwrap\n", "lint-allow.txt").unwrap();
    let findings = vec![Finding {
        rule: "no-panic",
        path: "crates/sim/src/runner.rs".into(),
        line: 1,
        col: 1,
        message: "`.unwrap()` in non-test hot-path code: x.unwrap()".into(),
    }];
    let kept = allowlist::apply(
        findings,
        &mut entries,
        &["crates/sim/src/runner.rs"],
        "lint-allow.txt",
    );
    // Finding survives AND the entry goes stale: two findings total.
    assert_eq!(kept.len(), 2, "{kept:?}");
    assert!(kept.iter().any(|f| f.rule == "no-panic"));
    assert!(kept.iter().any(|f| f.rule == "stale-allowlist"));
}

// ---- SARIF shape ------------------------------------------------------

#[test]
fn sarif_has_the_2_1_0_shape() {
    let findings = vec![
        Finding {
            rule: "cycle-integrity",
            path: "crates/rdram/src/bank.rs".into(),
            line: 80,
            col: 41,
            message: "unchecked `+` on a cycle-carrying value: a + t.t_rc".into(),
        },
        Finding {
            rule: "no-panic",
            path: "crates/smc/src/msu.rs".into(),
            line: 0, // degenerate position must clamp to 1 in SARIF
            col: 0,
            message: "quoting \"tricky\" text\n with a newline".into(),
        },
    ];
    let doc = serde_json::from_str(&report::sarif(&findings)).expect("SARIF must be valid JSON");
    assert_eq!(doc["version"].as_str(), Some("2.1.0"));
    assert!(doc["$schema"].as_str().unwrap().contains("sarif-2.1.0"));
    let runs = doc["runs"].as_array().unwrap();
    assert_eq!(runs.len(), 1);
    let driver = &runs[0]["tool"]["driver"];
    assert_eq!(driver["name"].as_str(), Some("xtask-lint"));
    let rules = driver["rules"].as_array().unwrap();
    assert_eq!(rules.len(), report::RULE_CATALOG.len());
    for (rule, (id, _)) in rules.iter().zip(report::RULE_CATALOG) {
        assert_eq!(rule["id"].as_str(), Some(*id));
        assert!(rule["shortDescription"]["text"].as_str().is_some());
    }
    let results = runs[0]["results"].as_array().unwrap();
    assert_eq!(results.len(), 2);
    let r0 = &results[0];
    assert_eq!(r0["ruleId"].as_str(), Some("cycle-integrity"));
    assert_eq!(r0["level"].as_str(), Some("error"));
    let loc = &r0["locations"].as_array().unwrap()[0]["physicalLocation"];
    assert_eq!(
        loc["artifactLocation"]["uri"].as_str(),
        Some("crates/rdram/src/bank.rs")
    );
    assert_eq!(loc["region"]["startLine"].as_u64(), Some(80));
    assert_eq!(loc["region"]["startColumn"].as_u64(), Some(41));
    // Degenerate 0 positions clamp to SARIF's 1-based minimum.
    let loc1 = &results[1]["locations"].as_array().unwrap()[0]["physicalLocation"];
    assert_eq!(loc1["region"]["startLine"].as_u64(), Some(1));
}

#[test]
fn findings_json_round_trips() {
    let findings = vec![Finding {
        rule: "no-float",
        path: "crates/rdram/src/legacy.rs".into(),
        line: 12,
        col: 9,
        message: "float \"literal\"".into(),
    }];
    let doc = serde_json::from_str(&report::findings_json(&findings)).unwrap();
    let arr = doc.as_array().unwrap();
    assert_eq!(arr.len(), 1);
    assert_eq!(arr[0]["rule"].as_str(), Some("no-float"));
    assert_eq!(arr[0]["line"].as_u64(), Some(12));
    assert_eq!(arr[0]["message"].as_str(), Some("float \"literal\""));
}

// ---- the repository itself is clean -----------------------------------

#[test]
fn repository_lint_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let outcome = xtask::run_lint(&root).expect("lint must run");
    assert!(
        outcome.findings.is_empty(),
        "repository lint must be clean:\n{}",
        outcome
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
