//! Property suite for the system address map: randomized topologies ×
//! placements × per-channel interleavings, checking the two contracts the
//! controllers rely on:
//!
//! 1. **Bijectivity** — `encode` inverts `decode` exactly on every address
//!    in the system's range, and the decoded channel always agrees with
//!    [`SystemMap::split`]. A placement that dropped or aliased addresses
//!    would corrupt stream data silently; the round trip makes that a
//!    seeded counterexample instead.
//! 2. **Channel balance** — channel-interleaved placement spreads any
//!    aligned run of blocks across channels with per-channel counts within
//!    one of each other; sequential placement keeps one extent on one
//!    channel; NUMA placement homes everything.

use faults::{FaultInjector, FaultPlan};
use proptest::prelude::*;

use memsys::{MemorySystem, Placement, SystemMap, Topology};
use rdram::{AddressMap, Command, DeviceConfig, Interleave, PACKET_BYTES};

/// A generated system shape: topology, placement, and inner interleave.
#[derive(Debug, Clone)]
struct Shape {
    channels: usize,
    devices: usize,
    placement: Placement,
    page_interleave: bool,
}

impl Shape {
    fn build(&self) -> (SystemMap, DeviceConfig) {
        let mut cfg = DeviceConfig::default();
        cfg.devices = self.devices;
        let interleave = if self.page_interleave {
            Interleave::Page
        } else {
            Interleave::Cacheline { line_bytes: 32 }
        };
        let inner = AddressMap::new(interleave, &cfg).expect("inner map builds");
        let topo = Topology {
            channels: self.channels,
            devices_per_channel: self.devices,
            remote_penalty: Vec::new(),
        };
        let map = SystemMap::new(inner, &cfg, &topo, self.placement).expect("valid shape");
        (map, cfg)
    }

    /// Total bytes the whole system addresses.
    fn total_bytes(&self, cfg: &DeviceConfig) -> u64 {
        match self.placement {
            // NUMA exposes one channel's worth of address space.
            Placement::Numa { .. } => cfg.capacity_bytes(),
            _ => cfg.capacity_bytes() * self.channels as u64,
        }
    }
}

/// Strategy over valid shapes: 1-8 channels, 1-4 devices per channel, all
/// three placements (interleave blocks are packet-aligned powers of two,
/// so they always divide the power-of-two channel capacity).
fn shapes() -> impl Strategy<Value = Shape> {
    (1usize..9, 1usize..5, 0u32..4, any::<bool>(), 0usize..8).prop_map(
        |(channels, devices, kind, page_interleave, extra)| {
            let placement = match kind {
                0 => Placement::ChannelInterleaved {
                    block_bytes: PACKET_BYTES << (extra % 10),
                },
                1 => Placement::DeviceSequential,
                2 => Placement::Numa {
                    home: extra % channels,
                },
                _ => Placement::default(),
            };
            Shape {
                channels,
                devices,
                placement,
                page_interleave,
            }
        },
    )
}

proptest! {
    /// `encode(decode(addr)) == addr` on every placement, and the decoded
    /// global bank lives on the channel `split` assigns the address to.
    #[test]
    fn decode_encode_round_trips_and_banks_stay_in_range(
        shape in shapes(),
        addr_seeds in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let (map, cfg) = shape.build();
        let total = shape.total_bytes(&cfg);
        for seed in addr_seeds {
            // Packet-aligned addresses within the system's range (the
            // stream layouts only ever produce aligned addresses).
            let addr = (seed % total) / PACKET_BYTES * PACKET_BYTES;
            let loc = map.decode(addr);
            prop_assert!(loc.bank < map.banks(), "bank {} of {}", loc.bank, map.banks());
            let (ch, _) = map.split(addr);
            prop_assert_eq!(map.channel_of_bank(loc.bank), ch, "addr {}", addr);
            prop_assert_eq!(map.encode(loc), addr, "round trip at {}", addr);
        }
    }

    /// Distinct addresses never alias to one location: decode is injective
    /// on the packet-aligned address range (a direct corollary of the
    /// round trip, asserted independently over random pairs).
    #[test]
    fn decode_never_aliases_two_addresses(
        shape in shapes(),
        a_seed in any::<u64>(),
        b_seed in any::<u64>(),
    ) {
        let (map, cfg) = shape.build();
        let total = shape.total_bytes(&cfg);
        let a = (a_seed % total) / PACKET_BYTES * PACKET_BYTES;
        let b = (b_seed % total) / PACKET_BYTES * PACKET_BYTES;
        if a == b {
            continue;
        }
        let (la, lb) = (map.decode(a), map.decode(b));
        prop_assert!(
            la.bank != lb.bank || la.row != lb.row || la.col != lb.col,
            "addresses {} and {} alias to {:?}", a, b, la
        );
    }

    /// Channel-interleaved placement balances any aligned run of blocks:
    /// per-channel block counts stay within one of each other, and a full
    /// rotation touches every channel exactly once.
    #[test]
    fn interleaved_runs_balance_across_channels(
        channels in 2usize..9,
        devices in 1usize..5,
        block_shift in 0u32..7,
        start_block in 0u64..1024,
        run_blocks in 1usize..256,
    ) {
        let shape = Shape {
            channels,
            devices,
            placement: Placement::ChannelInterleaved {
                block_bytes: PACKET_BYTES << block_shift,
            },
            page_interleave: true,
        };
        let (map, cfg) = shape.build();
        let block_bytes = PACKET_BYTES << block_shift;
        let total_blocks = shape.total_bytes(&cfg) / block_bytes;
        let mut counts = vec![0u64; channels];
        for i in 0..run_blocks as u64 {
            let block = (start_block + i) % total_blocks;
            let (ch, _) = map.split(block * block_bytes);
            counts[ch] += 1;
        }
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        prop_assert!(
            max - min <= 1,
            "run of {} blocks from {}: counts {:?}", run_blocks, start_block, counts
        );
        if run_blocks >= channels {
            prop_assert_eq!(min, run_blocks as u64 / channels as u64);
        }
    }

    /// Sequential placement keeps each capacity-sized extent on a single
    /// channel, in channel order; NUMA placement homes every address.
    #[test]
    fn sequential_and_numa_concentrate_traffic_as_specified(
        channels in 2usize..9,
        devices in 1usize..5,
        home_seed in 0usize..8,
        addr_seeds in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let seq = Shape {
            channels,
            devices,
            placement: Placement::DeviceSequential,
            page_interleave: true,
        };
        let (map, cfg) = seq.build();
        let cap = cfg.capacity_bytes();
        for seed in &addr_seeds {
            let addr = (seed % (cap * channels as u64)) / PACKET_BYTES * PACKET_BYTES;
            let (ch, local) = map.split(addr);
            prop_assert_eq!(ch as u64, addr / cap, "extent owner at {}", addr);
            prop_assert_eq!(local, addr % cap);
        }
        let home = home_seed % channels;
        let numa = Shape {
            channels,
            devices,
            placement: Placement::Numa { home },
            page_interleave: true,
        };
        let (map, _) = numa.build();
        for seed in &addr_seeds {
            let addr = (seed % cap) / PACKET_BYTES * PACKET_BYTES;
            let (ch, _) = map.split(addr);
            prop_assert_eq!(ch, home, "NUMA home at {}", addr);
            prop_assert_eq!(map.channel_of_bank(map.decode(addr).bank), home);
        }
    }

    /// Failed-channel topologies: with one channel declared down, the
    /// address map stays a bijection over the *surviving* global bank
    /// space — survivors round-trip exactly, never alias each other, and
    /// never decode into the failed channel's bank range. (The map is
    /// placement-only, so a chaos plan must not bend it; this pins that.)
    #[test]
    fn failed_channel_topologies_stay_bijective_on_survivors(
        shape in shapes(),
        failed_seed in any::<usize>(),
        addr_seeds in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let (map, cfg) = shape.build();
        let failed = failed_seed % shape.channels;
        let bpc = map.banks() / shape.channels;
        let total = shape.total_bytes(&cfg);
        let mut survivors: Vec<(u64, rdram::Location)> = Vec::new();
        for seed in addr_seeds {
            let addr = (seed % total) / PACKET_BYTES * PACKET_BYTES;
            let (ch, _) = map.split(addr);
            if ch == failed {
                continue;
            }
            let loc = map.decode(addr);
            // Survivors never land in the failed channel's bank range.
            let owner = map.channel_of_bank(loc.bank);
            prop_assert_ne!(owner, failed, "addr {} decoded into the failed channel", addr);
            prop_assert!(
                loc.bank < failed * bpc || loc.bank >= (failed + 1) * bpc,
                "bank {} inside failed range [{}, {})", loc.bank, failed * bpc, (failed + 1) * bpc
            );
            prop_assert_eq!(map.encode(loc), addr, "survivor round trip at {}", addr);
            survivors.push((addr, loc));
        }
        // No two surviving addresses alias one location.
        for (i, (a, la)) in survivors.iter().enumerate() {
            for (b, lb) in survivors.iter().skip(i + 1) {
                if a != b {
                    prop_assert!(
                        la.bank != lb.bank || la.row != lb.row || la.col != lb.col,
                        "survivors {} and {} alias to {:?}", a, b, la
                    );
                }
            }
        }
    }

    /// Degraded-mode accounting sums exactly: under seeded chaos plans,
    /// the system-wide totals equal the field-wise per-channel sum, MTTR
    /// reconciles against the injected outage windows, and healthy
    /// channels stay clean.
    #[test]
    fn chaos_stats_sum_exactly_under_seeded_plans(
        channels in 2usize..5,
        chaos_seed in any::<u64>(),
        bank_seeds in prop::collection::vec(any::<usize>(), 8..48),
    ) {
        let cfg = DeviceConfig::default();
        let topo = Topology {
            channels,
            devices_per_channel: cfg.devices,
            remote_penalty: Vec::new(),
        };
        let plan = FaultPlan::chaos_from_seed(chaos_seed, channels);
        let mut sys = MemorySystem::new(cfg, topo);
        sys.set_chaos(FaultInjector::new(&plan, chaos_seed));
        let banks = sys.total_banks();
        let mut now = 0u64;
        for (i, seed) in bank_seeds.iter().enumerate() {
            let bank = seed % banks;
            let act = Command::activate(bank, (i % 4) as u64);
            let t = sys.earliest(&act, now);
            prop_assert!(t < u64::MAX, "chaos plan {} livelocked ACT", plan.to_spec());
            sys.issue_at(&act, t).expect("earliest-then-issue holds under chaos");
            let col = Command::read(bank, 0).with_auto_precharge();
            let t = sys.earliest(&col, now);
            sys.issue_at(&col, t).expect("COL issue holds under chaos");
            now = now.saturating_add(97);
        }
        // Exact sum: totals are the field-wise sum of per-channel stats.
        let mut manual = memsys::ChannelFaultStats::default();
        for st in sys.chaos_stats() {
            manual.absorb(st);
        }
        prop_assert_eq!(sys.chaos_stats_total(), manual);
        for (ch, st) in sys.chaos_stats().iter().enumerate() {
            let windows = plan.outage_windows(ch);
            let injected: u64 = windows.iter().map(|(f, e)| e - f).sum();
            prop_assert!(st.outages_observed as usize <= windows.len());
            // Each observed window contributes its injected length once.
            if st.outages_observed as usize == windows.len() {
                prop_assert_eq!(st.mttr_cycles, injected, "channel {} MTTR", ch);
            } else {
                prop_assert!(st.mttr_cycles <= injected);
            }
            if let Some(at) = st.last_recovery_at {
                prop_assert!(
                    windows.iter().any(|&(_, e)| e == at),
                    "recovery at {} matches no injected window end {:?}", at, windows
                );
            }
            // A channel no clause touches must stay clean.
            let touched = plan.clauses.iter().any(|c| match *c {
                faults::FaultClause::ChannelBrownout { channel, .. }
                | faults::FaultClause::ChannelOutage { channel, .. }
                | faults::FaultClause::DeviceFail { channel, .. } => channel == ch,
                _ => false,
            });
            if !touched {
                prop_assert!(st.is_clean(), "untouched channel {} has stats {:?}", ch, st);
            }
        }
    }

    /// Randomized topologies validate exactly when their shape is sound,
    /// and the single-channel passthrough never pays a remote penalty.
    #[test]
    fn topology_validation_matches_its_contract(
        channels in 0usize..9,
        devices in 0usize..5,
        penalties in prop::collection::vec(0u64..65, 0..10),
    ) {
        let topo = Topology {
            channels,
            devices_per_channel: devices,
            remote_penalty: penalties.clone(),
        };
        let sound = channels >= 1 && devices >= 1 && penalties.len() <= channels;
        prop_assert_eq!(topo.validate().is_ok(), sound);
        if sound {
            for ch in 0..channels {
                let expect = if channels == 1 {
                    0
                } else {
                    penalties.get(ch).copied().unwrap_or(0)
                };
                prop_assert_eq!(topo.penalty_of(ch), expect);
            }
        }
    }
}
