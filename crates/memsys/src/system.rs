//! The multi-channel memory system: command routing and aggregation.

use std::sync::Arc;

use rdram::{
    AccessPlan, ChannelFaults, ColOp, Command, CommandPort, CommandRecord, Cycle, DeviceConfig,
    DeviceStats, Location, Outcome, ProtocolError, Rdram, RowOp, SharedSink, Timing,
};

use crate::Topology;

/// Re-target `cmd` at channel-local bank `bank`, preserving everything
/// else.
fn rebase(cmd: &Command, bank: usize) -> Command {
    match cmd {
        Command::Row(RowOp::Activate { row, .. }) => Command::activate(bank, *row),
        Command::Row(RowOp::Precharge { .. }) => Command::precharge(bank),
        Command::Col { op, auto_precharge } => {
            let base = match op {
                ColOp::Read { col, .. } => Command::read(bank, *col),
                ColOp::Write { col, .. } => Command::write(bank, *col),
            };
            if *auto_precharge {
                base.with_auto_precharge()
            } else {
                base
            }
        }
    }
}

/// Split a globally-banked command stream into per-channel, channel-local
/// streams.
///
/// Index `i` of the result holds channel `i`'s commands, re-targeted at
/// channel-local banks and keeping their recorded cycles, in the order
/// they appear in `records`. Records whose bank lies beyond the last
/// channel are dropped (the device would have rejected them). Replaying
/// each returned stream against the *per-channel* device configuration is
/// the correct way to audit a multi-channel trace: every channel has its
/// own bus triple, so a flattened replay would merge independent buses.
pub fn split_by_channel(
    records: &[CommandRecord],
    channels: usize,
    banks_per_channel: usize,
) -> Vec<Vec<CommandRecord>> {
    let mut out = vec![Vec::new(); channels.max(1)];
    if banks_per_channel == 0 {
        return out;
    }
    for rec in records {
        let ch = rec.cmd.bank() / banks_per_channel;
        if ch >= out.len() {
            continue;
        }
        let local = rec.cmd.bank() % banks_per_channel;
        out[ch].push(CommandRecord {
            cycle: rec.cycle,
            cmd: rebase(&rec.cmd, local),
        });
    }
    out
}

/// Maps a channel's local bank indices onto the global fault timeline, so
/// one injector (speaking global banks) drives every channel's device.
#[derive(Debug)]
struct OffsetFaults {
    base: usize,
    inner: Arc<dyn ChannelFaults>,
}

impl ChannelFaults for OffsetFaults {
    fn free_at(&self, bank: usize, t: Cycle) -> Cycle {
        self.inner.free_at(self.base.saturating_add(bank), t)
    }
}

/// N independent Direct Rambus channels behind one command interface.
///
/// Commands carry *global* bank indices (see [`SystemMap`](crate::SystemMap));
/// the system routes each to the owning channel's [`Rdram`] after
/// re-targeting it at the channel-local bank. A single-channel system is a
/// transparent passthrough — identical cycle-for-cycle and byte-for-byte
/// to driving the device directly.
///
/// NUMA-style asymmetry: a channel with a nonzero
/// [`Topology::remote_penalty`] entry receives ROW commands late — a
/// command launched at `t` reaches the device at `t + penalty`, so the
/// activate/precharge work it starts is delayed by the penalty while
/// COL/DATA scheduling is untouched. [`earliest`](MemorySystem::earliest)
/// folds the shift in, so the usual earliest-then-issue discipline stays
/// valid.
#[derive(Debug)]
pub struct MemorySystem {
    topo: Topology,
    channels: Vec<Rdram>,
    banks_per_channel: usize,
    /// DATA-bus cycles charged to each global bank, the measured currency
    /// the tenancy regulator's per-bank budgets are denominated in.
    bank_data_cycles: Vec<Cycle>,
    /// Multi-channel command observer; records globally-banked commands.
    /// Single-channel systems install the sink on the device instead.
    sink: Option<SharedSink>,
    /// Label awaiting the next issued command (multi-channel tracing).
    pending_label: Option<String>,
}

impl MemorySystem {
    /// Build `topo.channels` channels, each a device shaped like `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is invalid or disagrees with `cfg.devices`
    /// (the per-channel device count lives in both, and they must match),
    /// or if `cfg` itself is invalid. System construction happens once at
    /// simulation setup, where an invalid configuration is unrecoverable.
    pub fn new(cfg: DeviceConfig, topo: Topology) -> Self {
        let validity = topo.validate();
        assert!(validity.is_ok(), "invalid topology: {validity:?}");
        assert!(
            cfg.devices == topo.devices_per_channel,
            "cfg.devices ({}) must equal topo.devices_per_channel ({})",
            cfg.devices,
            topo.devices_per_channel
        );
        let banks_per_channel = cfg.total_banks();
        let channels: Vec<Rdram> = (0..topo.channels)
            .map(|_| Rdram::new(cfg.clone()))
            .collect();
        MemorySystem {
            bank_data_cycles: vec![0; banks_per_channel * topo.channels],
            channels,
            banks_per_channel,
            topo,
            sink: None,
            pending_label: None,
        }
    }

    /// The paper's memory system: one channel of one device.
    pub fn single(cfg: DeviceConfig) -> Self {
        let topo = Topology {
            devices_per_channel: cfg.devices,
            ..Topology::single()
        };
        MemorySystem::new(cfg, topo)
    }

    /// The topology this system was built with.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Banks across the whole system.
    pub fn total_banks(&self) -> usize {
        self.banks_per_channel * self.channels.len()
    }

    /// Banks on each channel.
    pub fn banks_per_channel(&self) -> usize {
        self.banks_per_channel
    }

    /// Which channel owns global bank `bank`.
    pub fn channel_of_bank(&self, bank: usize) -> usize {
        bank / self.banks_per_channel
    }

    /// Channel `ch`'s device, for per-channel inspection (stats, buses,
    /// traces).
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn device(&self, ch: usize) -> &Rdram {
        &self.channels[ch]
    }

    /// Mutable access to channel `ch`'s device.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn device_mut(&mut self, ch: usize) -> &mut Rdram {
        &mut self.channels[ch]
    }

    /// The timing parameters every channel runs under.
    pub fn timing(&self) -> &Timing {
        self.channels[0].timing()
    }

    /// The per-channel device configuration.
    pub fn config(&self) -> &DeviceConfig {
        self.channels[0].config()
    }

    /// Statistics summed over every channel, field by field. With one
    /// channel this equals the device's own counters exactly; with N it
    /// is the whole system's traffic (the per-channel breakdown stays
    /// available through [`channel_stats`](MemorySystem::channel_stats)).
    pub fn stats(&self) -> DeviceStats {
        let mut acc = DeviceStats::default();
        for dev in &self.channels {
            let s = dev.stats();
            acc.activates += s.activates;
            acc.precharges += s.precharges;
            acc.auto_precharges += s.auto_precharges;
            acc.read_hits += s.read_hits;
            acc.write_hits += s.write_hits;
            acc.read_packets += s.read_packets;
            acc.write_packets += s.write_packets;
            acc.turnarounds += s.turnarounds;
            acc.data_busy_cycles += s.data_busy_cycles;
        }
        acc
    }

    /// Channel `ch`'s own statistics.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn channel_stats(&self, ch: usize) -> &DeviceStats {
        self.channels[ch].stats()
    }

    /// DATA-bus cycles charged to each global bank so far — the measured
    /// per-channel/per-bank traffic the tenancy regulator budgets against.
    pub fn bank_data_cycles(&self) -> &[Cycle] {
        &self.bank_data_cycles
    }

    /// Attach a command sink. On a single channel the sink goes straight
    /// onto the device (bit-identical to the single-device model); on a
    /// multi-channel system the router records each accepted command with
    /// its global bank.
    pub fn set_cmd_sink(&mut self, sink: SharedSink) {
        if self.channels.len() == 1 {
            self.channels[0].set_cmd_sink(sink);
        } else {
            self.sink = Some(sink);
        }
    }

    /// Whether a command sink is attached.
    pub fn has_cmd_sink(&self) -> bool {
        self.sink.is_some() || self.channels[0].has_cmd_sink()
    }

    /// Detach the command sink, if any.
    pub fn clear_cmd_sink(&mut self) {
        self.sink = None;
        for dev in &mut self.channels {
            dev.clear_cmd_sink();
        }
    }

    /// Attach an injected-fault model speaking *global* bank indices.
    /// Each channel's device sees the same timeline through a local→global
    /// bank offset, so controller and devices agree on busy windows.
    pub fn set_faults(&mut self, faults: Arc<dyn ChannelFaults>) {
        if self.channels.len() == 1 {
            self.channels[0].set_faults(faults);
            return;
        }
        for (ch, dev) in self.channels.iter_mut().enumerate() {
            dev.set_faults(Arc::new(OffsetFaults {
                base: ch * self.banks_per_channel,
                inner: Arc::clone(&faults),
            }));
        }
    }

    /// Attach a label to the events of the next issued command (see
    /// [`Rdram::set_label`]); the router forwards it to whichever channel
    /// that command lands on.
    pub fn set_label(&mut self, label: impl Into<String>) {
        if self.channels.len() == 1 {
            self.channels[0].set_label(label);
        } else {
            self.pending_label = Some(label.into());
        }
    }

    /// Take ownership of channel 0's recorded packet trace, if tracing is
    /// enabled (the paper's timing-diagram figures run single-channel;
    /// other channels' traces are reachable via
    /// [`device_mut`](MemorySystem::device_mut)).
    pub fn take_trace(&mut self) -> Option<rdram::trace::Trace> {
        self.channels[0].take_trace()
    }

    /// Extra delivery delay `cmd` pays to reach channel `ch`: the
    /// topology's ROW penalty for row commands, zero for column traffic.
    fn shift_of(&self, ch: usize, cmd: &Command) -> Cycle {
        match cmd {
            Command::Row(RowOp::Activate { .. }) | Command::Row(RowOp::Precharge { .. }) => {
                self.topo.penalty_of(ch)
            }
            Command::Col { .. } => 0,
        }
    }

    /// What ROW work is needed before a COL access can reach `loc`
    /// (global bank).
    ///
    /// # Panics
    ///
    /// Panics if the location's bank is out of range.
    pub fn plan(&self, loc: Location) -> AccessPlan {
        let ch = self.channel_of_bank(loc.bank);
        self.channels[ch].plan(Location {
            bank: loc.bank % self.banks_per_channel,
            row: loc.row,
            col: loc.col,
        })
    }

    /// The row currently open in global bank `bank`, if any.
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        let ch = self.channel_of_bank(bank);
        self.channels
            .get(ch)
            .and_then(|dev| dev.open_row(bank % self.banks_per_channel))
    }

    /// Earliest cycle `>= now` at which `cmd` (global bank) may start,
    /// from the controller's point of view: for a penalized ROW command
    /// this is the launch cycle whose delayed delivery the channel
    /// accepts.
    pub fn earliest(&self, cmd: &Command, now: Cycle) -> Cycle {
        let bank = cmd.bank();
        let ch = self.channel_of_bank(bank);
        let Some(dev) = self.channels.get(ch) else {
            return now;
        };
        let local = rebase(cmd, bank % self.banks_per_channel);
        let shift = self.shift_of(ch, cmd);
        if shift == 0 {
            return dev.earliest(&local, now);
        }
        // The device must accept the command at launch + shift; the
        // launch cycle is its acceptance cycle pulled back by the shift
        // (never before `now`, since device earliest never precedes its
        // own `now` argument).
        dev.earliest(&local, now.saturating_add(shift))
            .saturating_sub(shift)
    }

    /// Issue `cmd` (global bank) with its packet launched at `start`.
    ///
    /// # Errors
    ///
    /// The owning channel's [`ProtocolError`] (bank indices in errors are
    /// channel-local), or [`ProtocolError::NoSuchBank`] with the global
    /// bank when no channel owns it.
    pub fn issue_at(&mut self, cmd: &Command, start: Cycle) -> Result<Outcome, ProtocolError> {
        let bank = cmd.bank();
        let ch = self.channel_of_bank(bank);
        if ch >= self.channels.len() {
            return Err(ProtocolError::NoSuchBank {
                bank,
                banks: self.total_banks(),
            });
        }
        let local = rebase(cmd, bank % self.banks_per_channel);
        let shift = self.shift_of(ch, cmd);
        let arrival = start.saturating_add(shift);
        if let Some(label) = self.pending_label.take() {
            self.channels[ch].set_label(label);
        }
        let outcome = self.channels[ch].issue_at(&local, arrival)?;
        if let Some(data) = outcome.data {
            self.bank_data_cycles[bank] = self.bank_data_cycles[bank].saturating_add(data.len());
        }
        if let Some(sink) = &self.sink {
            sink.record_command(CommandRecord {
                cycle: arrival,
                cmd: *cmd,
            });
        }
        Ok(outcome)
    }
}

impl CommandPort for MemorySystem {
    fn earliest(&self, cmd: &Command, now: Cycle) -> Cycle {
        MemorySystem::earliest(self, cmd, now)
    }

    fn issue_at(&mut self, cmd: &Command, start: Cycle) -> Result<Outcome, ProtocolError> {
        MemorySystem::issue_at(self, cmd, start)
    }

    fn open_row(&self, bank: usize) -> Option<u64> {
        MemorySystem::open_row(self, bank)
    }

    fn timing(&self) -> &Timing {
        MemorySystem::timing(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_channel() -> MemorySystem {
        MemorySystem::new(
            DeviceConfig::default(),
            Topology {
                channels: 2,
                ..Topology::single()
            },
        )
    }

    #[test]
    fn single_channel_matches_the_bare_device_cycle_for_cycle() {
        let cfg = DeviceConfig::default();
        let mut dev = Rdram::new(cfg.clone());
        let mut sys = MemorySystem::single(cfg);
        for cmd in [
            Command::activate(0, 0),
            Command::read(0, 0),
            Command::read(0, 16),
            Command::activate(3, 7),
            Command::write(3, 0),
            Command::precharge(0),
        ] {
            let td = dev.earliest(&cmd, 0);
            let ts = MemorySystem::earliest(&sys, &cmd, 0);
            assert_eq!(td, ts, "{cmd:?}");
            let od = dev.issue_at(&cmd, td).unwrap();
            let os = MemorySystem::issue_at(&mut sys, &cmd, ts).unwrap();
            assert_eq!(od, os, "{cmd:?}");
        }
        assert_eq!(sys.stats(), *dev.stats());
    }

    #[test]
    fn channels_have_independent_buses() {
        let mut sys = two_channel();
        // Banks 0 and 8 live on different channels: both ACTs start at 0
        // (one shared ROW bus would serialize them by tPACK).
        let a = Command::activate(0, 0);
        let b = Command::activate(8, 0);
        assert_eq!(MemorySystem::earliest(&sys, &a, 0), 0);
        MemorySystem::issue_at(&mut sys, &a, 0).unwrap();
        assert_eq!(MemorySystem::earliest(&sys, &b, 0), 0);
        MemorySystem::issue_at(&mut sys, &b, 0).unwrap();
        assert_eq!(sys.channel_stats(0).activates, 1);
        assert_eq!(sys.channel_stats(1).activates, 1);
        assert_eq!(sys.stats().activates, 2);
    }

    #[test]
    fn same_channel_banks_still_share_buses() {
        let mut sys = two_channel();
        let a = Command::activate(0, 0);
        let b = Command::activate(1, 0);
        MemorySystem::issue_at(&mut sys, &a, 0).unwrap();
        // tRR applies within the channel's single device.
        assert_eq!(MemorySystem::earliest(&sys, &b, 0), sys.timing().t_rr,);
    }

    #[test]
    fn row_penalty_delays_delivery_not_launch() {
        let mut sys = MemorySystem::new(
            DeviceConfig::default(),
            Topology {
                channels: 2,
                devices_per_channel: 1,
                remote_penalty: vec![0, 20],
            },
        );
        let act = Command::activate(8, 0); // channel 1, penalized
        let launch = MemorySystem::earliest(&sys, &act, 0);
        assert_eq!(launch, 0, "launch is immediate; delivery is late");
        MemorySystem::issue_at(&mut sys, &act, launch).unwrap();
        // The device saw the ACT at cycle 20: a COL is gated by tRCD
        // measured from delivery.
        let col = Command::read(8, 0);
        let t = MemorySystem::earliest(&sys, &col, 0);
        assert_eq!(t, 20 + sys.timing().t_rcd + 1);
    }

    #[test]
    fn local_channel_pays_no_penalty() {
        let sys = MemorySystem::new(
            DeviceConfig::default(),
            Topology {
                channels: 2,
                devices_per_channel: 1,
                remote_penalty: vec![0, 20],
            },
        );
        let act = Command::activate(0, 0);
        assert_eq!(MemorySystem::earliest(&sys, &act, 0), 0);
    }

    #[test]
    fn data_cycles_accumulate_per_global_bank() {
        let mut sys = two_channel();
        for (bank, row) in [(0usize, 0u64), (9, 0)] {
            let act = Command::activate(bank, row);
            let t = MemorySystem::earliest(&sys, &act, 0);
            MemorySystem::issue_at(&mut sys, &act, t).unwrap();
            let col = Command::read(bank, 0);
            let t = MemorySystem::earliest(&sys, &col, 0);
            MemorySystem::issue_at(&mut sys, &col, t).unwrap();
        }
        let per_bank = sys.bank_data_cycles();
        assert_eq!(per_bank.len(), 16);
        assert_eq!(per_bank[0], sys.timing().t_pack);
        assert_eq!(per_bank[9], sys.timing().t_pack);
        assert_eq!(per_bank[1], 0);
    }

    #[test]
    fn multi_channel_sink_records_global_banks() {
        use std::sync::{Arc, Mutex};
        let trace = Arc::new(Mutex::new(rdram::CommandTrace::new()));
        let mut sys = two_channel();
        sys.set_cmd_sink(SharedSink::from_trace(Arc::clone(&trace)));
        let act = Command::activate(8, 3);
        MemorySystem::issue_at(&mut sys, &act, 0).unwrap();
        let recs = rdram::sink::drain_trace(&trace);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].cmd.bank(), 8, "sink sees the global bank");
    }

    #[test]
    fn refresh_timer_walks_the_global_bank_space() {
        use rdram::refresh::RefreshTimer;
        let mut sys = two_channel();
        // A timer over the flattened 16-bank geometry.
        let flat = DeviceConfig {
            devices: 2,
            ..DeviceConfig::default()
        };
        let mut timer = RefreshTimer::new(&flat);
        let mut now = timer.interval();
        for _ in 0..16 {
            let done = timer.refresh_now(&mut sys, now).unwrap();
            now = done.max(now) + timer.interval();
        }
        // Banks rotate fastest: 16 refreshes touch every bank once, 8 on
        // each channel.
        assert_eq!(sys.channel_stats(0).activates, 8);
        assert_eq!(sys.channel_stats(1).activates, 8);
    }

    #[test]
    fn global_faults_reach_channel_local_devices() {
        #[derive(Debug)]
        struct Busy0To100;
        impl ChannelFaults for Busy0To100 {
            fn free_at(&self, bank: usize, t: Cycle) -> Cycle {
                // Global bank 8 (channel 1, local 0) busy until 100.
                if bank == 8 && t < 100 {
                    100
                } else {
                    t
                }
            }
        }
        let mut sys = two_channel();
        sys.set_faults(Arc::new(Busy0To100));
        let blocked = Command::activate(8, 0);
        assert_eq!(MemorySystem::earliest(&sys, &blocked, 0), 100);
        let clear = Command::activate(0, 0);
        assert_eq!(MemorySystem::earliest(&sys, &clear, 0), 0);
    }

    #[test]
    fn out_of_range_bank_is_rejected_globally() {
        let mut sys = two_channel();
        let err = MemorySystem::issue_at(&mut sys, &Command::activate(16, 0), 0).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::NoSuchBank {
                bank: 16,
                banks: 16
            }
        ));
    }

    #[test]
    fn split_by_channel_localizes_banks_and_keeps_order() {
        let records = [
            CommandRecord {
                cycle: 0,
                cmd: Command::activate(9, 3),
            },
            CommandRecord {
                cycle: 4,
                cmd: Command::activate(0, 1),
            },
            CommandRecord {
                cycle: 12,
                cmd: Command::read(9, 16).with_auto_precharge(),
            },
            CommandRecord {
                cycle: 20,
                cmd: Command::precharge(17), // beyond channel 1: dropped
            },
        ];
        let split = split_by_channel(&records, 2, 8);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].len(), 1);
        assert_eq!(split[0][0].cmd, Command::activate(0, 1));
        assert_eq!(split[1].len(), 2);
        assert_eq!(split[1][0].cycle, 0);
        assert_eq!(split[1][0].cmd, Command::activate(1, 3));
        assert_eq!(split[1][1].cmd, Command::read(1, 16).with_auto_precharge());
    }

    #[test]
    #[should_panic(expected = "must equal")]
    fn device_count_mismatch_is_rejected() {
        let _ = MemorySystem::new(
            DeviceConfig::default(),
            Topology {
                channels: 2,
                devices_per_channel: 4,
                remote_penalty: Vec::new(),
            },
        );
    }
}
