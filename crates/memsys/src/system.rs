//! The multi-channel memory system: command routing and aggregation.

use std::collections::BTreeSet;
use std::sync::Arc;

use faults::FaultInjector;
use rdram::{
    AccessPlan, ChannelFaults, ColOp, Command, CommandPort, CommandRecord, Cycle, DeviceConfig,
    DeviceStats, Location, Outcome, ProtocolError, Rdram, RowOp, SharedSink, Timing,
};
use serde::{Deserialize, Serialize};

use crate::Topology;

/// Iteration bound for the chaos-aware launch search in
/// [`MemorySystem::earliest`]. Each iteration advances the candidate
/// launch by at least one cycle toward the device's acceptance point;
/// exhausting the bound means the channel never accepts (reported as
/// "never", which the controllers' watchdogs turn into a structured
/// livelock error).
const CHAOS_EARLIEST_BOUND: u32 = 10_000;

/// Per-channel chaos accounting: DATA-delivery cycles lost to degraded
/// mode, commands deferred by outages, and recovery timestamps.
///
/// Every field is exact — the system-wide totals reported by
/// [`MemorySystem::chaos_stats_total`] are the field-wise sum of the
/// per-channel entries, and each observed outage window contributes its
/// injected length to `mttr_cycles` exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelFaultStats {
    /// Commands whose DATA delivery paid a degraded-mode penalty.
    pub degraded_commands: u64,
    /// Commands whose delivery was deferred past an outage window.
    pub deferred_commands: u64,
    /// Total cycles of outage deferral those commands paid.
    pub deferred_cycles: u64,
    /// Extra delivery cycles charged by channel-brownout multipliers.
    pub brownout_penalty_cycles: u64,
    /// Extra delivery cycles charged by failed-device multipliers.
    pub devfail_penalty_cycles: u64,
    /// Outage windows observed (each window counts once, at its first
    /// deferred command).
    pub outages_observed: u64,
    /// Summed repair time across observed outages: recovery cycle minus
    /// window start, i.e. exactly the injected window length per outage.
    pub mttr_cycles: u64,
    /// Cycle the most recently observed outage ended, if any.
    pub last_recovery_at: Option<Cycle>,
}

impl ChannelFaultStats {
    /// Field-wise accumulate `other` into `self`; the recovery timestamp
    /// keeps the latest of the two.
    pub fn absorb(&mut self, other: &ChannelFaultStats) {
        self.degraded_commands = self
            .degraded_commands
            .saturating_add(other.degraded_commands);
        self.deferred_commands = self
            .deferred_commands
            .saturating_add(other.deferred_commands);
        self.deferred_cycles = self.deferred_cycles.saturating_add(other.deferred_cycles);
        self.brownout_penalty_cycles = self
            .brownout_penalty_cycles
            .saturating_add(other.brownout_penalty_cycles);
        self.devfail_penalty_cycles = self
            .devfail_penalty_cycles
            .saturating_add(other.devfail_penalty_cycles);
        self.outages_observed = self.outages_observed.saturating_add(other.outages_observed);
        self.mttr_cycles = self.mttr_cycles.saturating_add(other.mttr_cycles);
        self.last_recovery_at = match (self.last_recovery_at, other.last_recovery_at) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Total DATA-delivery cycles this channel lost to chaos: deferral
    /// plus both degraded-mode penalties.
    pub fn lost_cycles(&self) -> u64 {
        self.deferred_cycles
            .saturating_add(self.brownout_penalty_cycles)
            .saturating_add(self.devfail_penalty_cycles)
    }

    /// Whether any chaos effect was observed at all.
    pub fn is_clean(&self) -> bool {
        *self == ChannelFaultStats::default()
    }
}

/// How a command's delivery is shaped by the active chaos plan.
struct ChaosDelivery {
    /// Cycle the command actually reaches the device.
    arrival: Cycle,
    /// Degraded-mode penalty folded into the delivery (0 when healthy).
    extra: Cycle,
    /// Brownout multiplier that produced `extra` (1 = none).
    channel_mult: u64,
    /// Failed-device multiplier that produced `extra` (1 = none).
    device_mult: u64,
    /// The outage window `[from, end)` the delivery was deferred past.
    outage: Option<(Cycle, Cycle)>,
}

/// Re-target `cmd` at channel-local bank `bank`, preserving everything
/// else.
fn rebase(cmd: &Command, bank: usize) -> Command {
    match cmd {
        Command::Row(RowOp::Activate { row, .. }) => Command::activate(bank, *row),
        Command::Row(RowOp::Precharge { .. }) => Command::precharge(bank),
        Command::Col { op, auto_precharge } => {
            let base = match op {
                ColOp::Read { col, .. } => Command::read(bank, *col),
                ColOp::Write { col, .. } => Command::write(bank, *col),
            };
            if *auto_precharge {
                base.with_auto_precharge()
            } else {
                base
            }
        }
    }
}

/// Split a globally-banked command stream into per-channel, channel-local
/// streams.
///
/// Index `i` of the result holds channel `i`'s commands, re-targeted at
/// channel-local banks and keeping their recorded cycles, in the order
/// they appear in `records`. Records whose bank lies beyond the last
/// channel are dropped (the device would have rejected them). Replaying
/// each returned stream against the *per-channel* device configuration is
/// the correct way to audit a multi-channel trace: every channel has its
/// own bus triple, so a flattened replay would merge independent buses.
pub fn split_by_channel(
    records: &[CommandRecord],
    channels: usize,
    banks_per_channel: usize,
) -> Vec<Vec<CommandRecord>> {
    let mut out = vec![Vec::new(); channels.max(1)];
    if banks_per_channel == 0 {
        return out;
    }
    for rec in records {
        let ch = rec.cmd.bank() / banks_per_channel;
        if ch >= out.len() {
            continue;
        }
        let local = rec.cmd.bank() % banks_per_channel;
        out[ch].push(CommandRecord {
            cycle: rec.cycle,
            cmd: rebase(&rec.cmd, local),
        });
    }
    out
}

/// Maps a channel's local bank indices onto the global fault timeline, so
/// one injector (speaking global banks) drives every channel's device.
#[derive(Debug)]
struct OffsetFaults {
    base: usize,
    inner: Arc<dyn ChannelFaults>,
}

impl ChannelFaults for OffsetFaults {
    fn free_at(&self, bank: usize, t: Cycle) -> Cycle {
        self.inner.free_at(self.base.saturating_add(bank), t)
    }
}

/// N independent Direct Rambus channels behind one command interface.
///
/// Commands carry *global* bank indices (see [`SystemMap`](crate::SystemMap));
/// the system routes each to the owning channel's [`Rdram`] after
/// re-targeting it at the channel-local bank. A single-channel system is a
/// transparent passthrough — identical cycle-for-cycle and byte-for-byte
/// to driving the device directly.
///
/// NUMA-style asymmetry: a channel with a nonzero
/// [`Topology::remote_penalty`] entry receives ROW commands late — a
/// command launched at `t` reaches the device at `t + penalty`, so the
/// activate/precharge work it starts is delayed by the penalty while
/// COL/DATA scheduling is untouched. [`earliest`](MemorySystem::earliest)
/// folds the shift in, so the usual earliest-then-issue discipline stays
/// valid.
#[derive(Debug)]
pub struct MemorySystem {
    topo: Topology,
    channels: Vec<Rdram>,
    banks_per_channel: usize,
    /// DATA-bus cycles charged to each global bank, the measured currency
    /// the tenancy regulator's per-bank budgets are denominated in.
    bank_data_cycles: Vec<Cycle>,
    /// Multi-channel command observer; records globally-banked commands.
    /// Single-channel systems install the sink on the device instead.
    sink: Option<SharedSink>,
    /// Label awaiting the next issued command (multi-channel tracing).
    pending_label: Option<String>,
    /// Channel-scoped chaos injector, if a plan with channel clauses is
    /// attached. `None` keeps the delivery path byte-identical to the
    /// chaos-free build.
    chaos: Option<FaultInjector>,
    /// Per-channel chaos accounting (always `channels()` entries).
    chaos_stats: Vec<ChannelFaultStats>,
    /// Outage window starts already counted per channel, so each window
    /// contributes to MTTR exactly once.
    seen_outages: Vec<BTreeSet<Cycle>>,
}

impl MemorySystem {
    /// Build `topo.channels` channels, each a device shaped like `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is invalid or disagrees with `cfg.devices`
    /// (the per-channel device count lives in both, and they must match),
    /// or if `cfg` itself is invalid. System construction happens once at
    /// simulation setup, where an invalid configuration is unrecoverable.
    pub fn new(cfg: DeviceConfig, topo: Topology) -> Self {
        let validity = topo.validate();
        assert!(validity.is_ok(), "invalid topology: {validity:?}");
        assert!(
            cfg.devices == topo.devices_per_channel,
            "cfg.devices ({}) must equal topo.devices_per_channel ({})",
            cfg.devices,
            topo.devices_per_channel
        );
        let banks_per_channel = cfg.total_banks();
        let channels: Vec<Rdram> = (0..topo.channels)
            .map(|_| Rdram::new(cfg.clone()))
            .collect();
        MemorySystem {
            bank_data_cycles: vec![0; banks_per_channel * topo.channels],
            chaos_stats: vec![ChannelFaultStats::default(); topo.channels],
            seen_outages: vec![BTreeSet::new(); topo.channels],
            channels,
            banks_per_channel,
            topo,
            sink: None,
            pending_label: None,
            chaos: None,
        }
    }

    /// The paper's memory system: one channel of one device.
    pub fn single(cfg: DeviceConfig) -> Self {
        let topo = Topology {
            devices_per_channel: cfg.devices,
            ..Topology::single()
        };
        MemorySystem::new(cfg, topo)
    }

    /// The topology this system was built with.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Banks across the whole system.
    pub fn total_banks(&self) -> usize {
        self.banks_per_channel * self.channels.len()
    }

    /// Banks on each channel.
    pub fn banks_per_channel(&self) -> usize {
        self.banks_per_channel
    }

    /// Which channel owns global bank `bank`.
    pub fn channel_of_bank(&self, bank: usize) -> usize {
        bank / self.banks_per_channel
    }

    /// Channel `ch`'s device, for per-channel inspection (stats, buses,
    /// traces).
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn device(&self, ch: usize) -> &Rdram {
        &self.channels[ch]
    }

    /// Mutable access to channel `ch`'s device.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn device_mut(&mut self, ch: usize) -> &mut Rdram {
        &mut self.channels[ch]
    }

    /// The timing parameters every channel runs under.
    pub fn timing(&self) -> &Timing {
        self.channels[0].timing()
    }

    /// The per-channel device configuration.
    pub fn config(&self) -> &DeviceConfig {
        self.channels[0].config()
    }

    /// Statistics summed over every channel, field by field. With one
    /// channel this equals the device's own counters exactly; with N it
    /// is the whole system's traffic (the per-channel breakdown stays
    /// available through [`channel_stats`](MemorySystem::channel_stats)).
    pub fn stats(&self) -> DeviceStats {
        let mut acc = DeviceStats::default();
        for dev in &self.channels {
            let s = dev.stats();
            acc.activates += s.activates;
            acc.precharges += s.precharges;
            acc.auto_precharges += s.auto_precharges;
            acc.read_hits += s.read_hits;
            acc.write_hits += s.write_hits;
            acc.read_packets += s.read_packets;
            acc.write_packets += s.write_packets;
            acc.turnarounds += s.turnarounds;
            acc.data_busy_cycles += s.data_busy_cycles;
        }
        acc
    }

    /// Channel `ch`'s own statistics.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn channel_stats(&self, ch: usize) -> &DeviceStats {
        self.channels[ch].stats()
    }

    /// DATA-bus cycles charged to each global bank so far — the measured
    /// per-channel/per-bank traffic the tenancy regulator budgets against.
    pub fn bank_data_cycles(&self) -> &[Cycle] {
        &self.bank_data_cycles
    }

    /// Attach a command sink. On a single channel the sink goes straight
    /// onto the device (bit-identical to the single-device model); on a
    /// multi-channel system the router records each accepted command with
    /// its global bank.
    pub fn set_cmd_sink(&mut self, sink: SharedSink) {
        if self.channels.len() == 1 {
            self.channels[0].set_cmd_sink(sink);
        } else {
            self.sink = Some(sink);
        }
    }

    /// Whether a command sink is attached.
    pub fn has_cmd_sink(&self) -> bool {
        self.sink.is_some() || self.channels[0].has_cmd_sink()
    }

    /// Detach the command sink, if any.
    pub fn clear_cmd_sink(&mut self) {
        self.sink = None;
        for dev in &mut self.channels {
            dev.clear_cmd_sink();
        }
    }

    /// Attach an injected-fault model speaking *global* bank indices.
    /// Each channel's device sees the same timeline through a local→global
    /// bank offset, so controller and devices agree on busy windows.
    pub fn set_faults(&mut self, faults: Arc<dyn ChannelFaults>) {
        if self.channels.len() == 1 {
            self.channels[0].set_faults(faults);
            return;
        }
        for (ch, dev) in self.channels.iter_mut().enumerate() {
            dev.set_faults(Arc::new(OffsetFaults {
                base: ch * self.banks_per_channel,
                inner: Arc::clone(&faults),
            }));
        }
    }

    /// Attach a channel-scoped chaos injector. Brownout and failed-device
    /// clauses multiply the delivery cost of DATA traffic on the afflicted
    /// channel; outage clauses defer every delivery inside their window to
    /// the window's end, with recovery timestamped in
    /// [`chaos_stats`](MemorySystem::chaos_stats). Injectors without any
    /// channel clause are ignored, so ordinary fault plans never touch the
    /// delivery path.
    pub fn set_chaos(&mut self, chaos: FaultInjector) {
        if chaos.has_channel_faults() {
            self.chaos = Some(chaos);
        }
    }

    /// Whether a chaos injector is active.
    pub fn has_chaos(&self) -> bool {
        self.chaos.is_some()
    }

    /// Per-channel chaos accounting, indexed by channel (all zeros when no
    /// chaos is attached or none of its windows were hit).
    pub fn chaos_stats(&self) -> &[ChannelFaultStats] {
        &self.chaos_stats
    }

    /// System-wide chaos accounting: the exact field-wise sum of every
    /// channel's [`ChannelFaultStats`].
    pub fn chaos_stats_total(&self) -> ChannelFaultStats {
        let mut acc = ChannelFaultStats::default();
        for st in &self.chaos_stats {
            acc.absorb(st);
        }
        acc
    }

    /// How the active chaos plan shapes a delivery launched at `launch`:
    /// degraded-mode multipliers stretch DATA traffic (modelled as extra
    /// delivery delay, `(mult - 1) * tPACK` per COL command), and outage
    /// windows defer the (already penalized) delivery to their end.
    fn chaos_delivery(&self, ch: usize, cmd: &Command, launch: Cycle) -> ChaosDelivery {
        let shift = self.shift_of(ch, cmd);
        let base = launch.saturating_add(shift);
        let Some(chaos) = &self.chaos else {
            return ChaosDelivery {
                arrival: base,
                extra: 0,
                channel_mult: 1,
                device_mult: 1,
                outage: None,
            };
        };
        let (channel_mult, device_mult) = match cmd {
            Command::Col { .. } => {
                let local = cmd.bank() % self.banks_per_channel.max(1);
                let device = local / self.config().banks.max(1);
                (
                    chaos.channel_cost_mult(ch, launch),
                    chaos.device_cost_mult(ch, device, launch),
                )
            }
            Command::Row(RowOp::Activate { .. }) | Command::Row(RowOp::Precharge { .. }) => (1, 1),
        };
        let extra = channel_mult
            .max(device_mult)
            .saturating_sub(1)
            .saturating_mul(self.timing().t_pack);
        let penalized = base.saturating_add(extra);
        let outage = chaos.outage_window(ch, penalized);
        ChaosDelivery {
            arrival: outage.map_or(penalized, |(_, end)| end),
            extra,
            channel_mult,
            device_mult,
            outage,
        }
    }

    /// Attach a label to the events of the next issued command (see
    /// [`Rdram::set_label`]); the router forwards it to whichever channel
    /// that command lands on.
    pub fn set_label(&mut self, label: impl Into<String>) {
        if self.channels.len() == 1 {
            self.channels[0].set_label(label);
        } else {
            self.pending_label = Some(label.into());
        }
    }

    /// Take ownership of channel 0's recorded packet trace, if tracing is
    /// enabled (the paper's timing-diagram figures run single-channel;
    /// other channels' traces are reachable via
    /// [`device_mut`](MemorySystem::device_mut)).
    pub fn take_trace(&mut self) -> Option<rdram::trace::Trace> {
        self.channels[0].take_trace()
    }

    /// Extra delivery delay `cmd` pays to reach channel `ch`: the
    /// topology's ROW penalty for row commands, zero for column traffic.
    fn shift_of(&self, ch: usize, cmd: &Command) -> Cycle {
        match cmd {
            Command::Row(RowOp::Activate { .. }) | Command::Row(RowOp::Precharge { .. }) => {
                self.topo.penalty_of(ch)
            }
            Command::Col { .. } => 0,
        }
    }

    /// What ROW work is needed before a COL access can reach `loc`
    /// (global bank).
    ///
    /// # Panics
    ///
    /// Panics if the location's bank is out of range.
    pub fn plan(&self, loc: Location) -> AccessPlan {
        let ch = self.channel_of_bank(loc.bank);
        self.channels[ch].plan(Location {
            bank: loc.bank % self.banks_per_channel,
            row: loc.row,
            col: loc.col,
        })
    }

    /// The row currently open in global bank `bank`, if any.
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        let ch = self.channel_of_bank(bank);
        self.channels
            .get(ch)
            .and_then(|dev| dev.open_row(bank % self.banks_per_channel))
    }

    /// Earliest cycle `>= now` at which `cmd` (global bank) may start,
    /// from the controller's point of view: for a penalized ROW command
    /// this is the launch cycle whose delayed delivery the channel
    /// accepts.
    pub fn earliest(&self, cmd: &Command, now: Cycle) -> Cycle {
        let bank = cmd.bank();
        let ch = self.channel_of_bank(bank);
        let Some(dev) = self.channels.get(ch) else {
            return now;
        };
        let local = rebase(cmd, bank % self.banks_per_channel);
        let shift = self.shift_of(ch, cmd);
        if self.chaos.is_none() {
            if shift == 0 {
                return dev.earliest(&local, now);
            }
            // The device must accept the command at launch + shift; the
            // launch cycle is its acceptance cycle pulled back by the shift
            // (never before `now`, since device earliest never precedes its
            // own `now` argument).
            return dev
                .earliest(&local, now.saturating_add(shift))
                .saturating_sub(shift)
                .max(now);
        }
        // Chaos path: the launch→arrival map is no longer a fixed shift
        // (penalties depend on the launch cycle and outages flatten whole
        // windows onto one arrival), so search forward for the first
        // launch whose shaped delivery the device accepts. Each miss pulls
        // the candidate toward the device's acceptance cycle and advances
        // it by at least one, so the loop either converges or hits the
        // bound (reported as "never"; the controllers' watchdogs turn that
        // into a structured livelock).
        let mut launch = now;
        for _ in 0..CHAOS_EARLIEST_BOUND {
            let arrival = self.chaos_delivery(ch, cmd, launch).arrival;
            let accept = dev.earliest(&local, arrival);
            if accept == arrival {
                return launch;
            }
            if accept == Cycle::MAX {
                return Cycle::MAX;
            }
            let lag = arrival.saturating_sub(launch);
            launch = accept.saturating_sub(lag).max(launch.saturating_add(1));
        }
        Cycle::MAX
    }

    /// Issue `cmd` (global bank) with its packet launched at `start`.
    ///
    /// # Errors
    ///
    /// The owning channel's [`ProtocolError`] (bank indices in errors are
    /// channel-local), or [`ProtocolError::NoSuchBank`] with the global
    /// bank when no channel owns it.
    pub fn issue_at(&mut self, cmd: &Command, start: Cycle) -> Result<Outcome, ProtocolError> {
        let bank = cmd.bank();
        let ch = self.channel_of_bank(bank);
        if ch >= self.channels.len() {
            return Err(ProtocolError::NoSuchBank {
                bank,
                banks: self.total_banks(),
            });
        }
        let local = rebase(cmd, bank % self.banks_per_channel);
        let delivery = self.chaos_delivery(ch, cmd, start);
        let arrival = delivery.arrival;
        if let Some(label) = self.pending_label.take() {
            self.channels[ch].set_label(label);
        }
        let outcome = self.channels[ch].issue_at(&local, arrival)?;
        if self.chaos.is_some() {
            let penalized = start
                .saturating_add(self.shift_of(ch, cmd))
                .saturating_add(delivery.extra);
            let st = &mut self.chaos_stats[ch];
            if delivery.extra > 0 {
                st.degraded_commands = st.degraded_commands.saturating_add(1);
                if delivery.channel_mult >= delivery.device_mult {
                    st.brownout_penalty_cycles =
                        st.brownout_penalty_cycles.saturating_add(delivery.extra);
                } else {
                    st.devfail_penalty_cycles =
                        st.devfail_penalty_cycles.saturating_add(delivery.extra);
                }
            }
            if let Some((from, end)) = delivery.outage {
                st.deferred_commands = st.deferred_commands.saturating_add(1);
                st.deferred_cycles = st
                    .deferred_cycles
                    .saturating_add(arrival.saturating_sub(penalized));
                if self.seen_outages[ch].insert(from) {
                    let st = &mut self.chaos_stats[ch];
                    st.outages_observed = st.outages_observed.saturating_add(1);
                    st.mttr_cycles = st.mttr_cycles.saturating_add(end.saturating_sub(from));
                    st.last_recovery_at = Some(end);
                }
            }
        }
        if let Some(data) = outcome.data {
            self.bank_data_cycles[bank] = self.bank_data_cycles[bank].saturating_add(data.len());
        }
        if let Some(sink) = &self.sink {
            sink.record_command(CommandRecord {
                cycle: arrival,
                cmd: *cmd,
            });
        }
        Ok(outcome)
    }
}

impl CommandPort for MemorySystem {
    fn earliest(&self, cmd: &Command, now: Cycle) -> Cycle {
        MemorySystem::earliest(self, cmd, now)
    }

    fn issue_at(&mut self, cmd: &Command, start: Cycle) -> Result<Outcome, ProtocolError> {
        MemorySystem::issue_at(self, cmd, start)
    }

    fn open_row(&self, bank: usize) -> Option<u64> {
        MemorySystem::open_row(self, bank)
    }

    fn timing(&self) -> &Timing {
        MemorySystem::timing(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_channel() -> MemorySystem {
        MemorySystem::new(
            DeviceConfig::default(),
            Topology {
                channels: 2,
                ..Topology::single()
            },
        )
    }

    #[test]
    fn single_channel_matches_the_bare_device_cycle_for_cycle() {
        let cfg = DeviceConfig::default();
        let mut dev = Rdram::new(cfg.clone());
        let mut sys = MemorySystem::single(cfg);
        for cmd in [
            Command::activate(0, 0),
            Command::read(0, 0),
            Command::read(0, 16),
            Command::activate(3, 7),
            Command::write(3, 0),
            Command::precharge(0),
        ] {
            let td = dev.earliest(&cmd, 0);
            let ts = MemorySystem::earliest(&sys, &cmd, 0);
            assert_eq!(td, ts, "{cmd:?}");
            let od = dev.issue_at(&cmd, td).unwrap();
            let os = MemorySystem::issue_at(&mut sys, &cmd, ts).unwrap();
            assert_eq!(od, os, "{cmd:?}");
        }
        assert_eq!(sys.stats(), *dev.stats());
    }

    #[test]
    fn channels_have_independent_buses() {
        let mut sys = two_channel();
        // Banks 0 and 8 live on different channels: both ACTs start at 0
        // (one shared ROW bus would serialize them by tPACK).
        let a = Command::activate(0, 0);
        let b = Command::activate(8, 0);
        assert_eq!(MemorySystem::earliest(&sys, &a, 0), 0);
        MemorySystem::issue_at(&mut sys, &a, 0).unwrap();
        assert_eq!(MemorySystem::earliest(&sys, &b, 0), 0);
        MemorySystem::issue_at(&mut sys, &b, 0).unwrap();
        assert_eq!(sys.channel_stats(0).activates, 1);
        assert_eq!(sys.channel_stats(1).activates, 1);
        assert_eq!(sys.stats().activates, 2);
    }

    #[test]
    fn same_channel_banks_still_share_buses() {
        let mut sys = two_channel();
        let a = Command::activate(0, 0);
        let b = Command::activate(1, 0);
        MemorySystem::issue_at(&mut sys, &a, 0).unwrap();
        // tRR applies within the channel's single device.
        assert_eq!(MemorySystem::earliest(&sys, &b, 0), sys.timing().t_rr,);
    }

    #[test]
    fn row_penalty_delays_delivery_not_launch() {
        let mut sys = MemorySystem::new(
            DeviceConfig::default(),
            Topology {
                channels: 2,
                devices_per_channel: 1,
                remote_penalty: vec![0, 20],
            },
        );
        let act = Command::activate(8, 0); // channel 1, penalized
        let launch = MemorySystem::earliest(&sys, &act, 0);
        assert_eq!(launch, 0, "launch is immediate; delivery is late");
        MemorySystem::issue_at(&mut sys, &act, launch).unwrap();
        // The device saw the ACT at cycle 20: a COL is gated by tRCD
        // measured from delivery.
        let col = Command::read(8, 0);
        let t = MemorySystem::earliest(&sys, &col, 0);
        assert_eq!(t, 20 + sys.timing().t_rcd + 1);
    }

    #[test]
    fn local_channel_pays_no_penalty() {
        let sys = MemorySystem::new(
            DeviceConfig::default(),
            Topology {
                channels: 2,
                devices_per_channel: 1,
                remote_penalty: vec![0, 20],
            },
        );
        let act = Command::activate(0, 0);
        assert_eq!(MemorySystem::earliest(&sys, &act, 0), 0);
    }

    #[test]
    fn data_cycles_accumulate_per_global_bank() {
        let mut sys = two_channel();
        for (bank, row) in [(0usize, 0u64), (9, 0)] {
            let act = Command::activate(bank, row);
            let t = MemorySystem::earliest(&sys, &act, 0);
            MemorySystem::issue_at(&mut sys, &act, t).unwrap();
            let col = Command::read(bank, 0);
            let t = MemorySystem::earliest(&sys, &col, 0);
            MemorySystem::issue_at(&mut sys, &col, t).unwrap();
        }
        let per_bank = sys.bank_data_cycles();
        assert_eq!(per_bank.len(), 16);
        assert_eq!(per_bank[0], sys.timing().t_pack);
        assert_eq!(per_bank[9], sys.timing().t_pack);
        assert_eq!(per_bank[1], 0);
    }

    #[test]
    fn multi_channel_sink_records_global_banks() {
        use std::sync::{Arc, Mutex};
        let trace = Arc::new(Mutex::new(rdram::CommandTrace::new()));
        let mut sys = two_channel();
        sys.set_cmd_sink(SharedSink::from_trace(Arc::clone(&trace)));
        let act = Command::activate(8, 3);
        MemorySystem::issue_at(&mut sys, &act, 0).unwrap();
        let recs = rdram::sink::drain_trace(&trace);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].cmd.bank(), 8, "sink sees the global bank");
    }

    #[test]
    fn refresh_timer_walks_the_global_bank_space() {
        use rdram::refresh::RefreshTimer;
        let mut sys = two_channel();
        // A timer over the flattened 16-bank geometry.
        let flat = DeviceConfig {
            devices: 2,
            ..DeviceConfig::default()
        };
        let mut timer = RefreshTimer::new(&flat);
        let mut now = timer.interval();
        for _ in 0..16 {
            let done = timer.refresh_now(&mut sys, now).unwrap();
            now = done.max(now) + timer.interval();
        }
        // Banks rotate fastest: 16 refreshes touch every bank once, 8 on
        // each channel.
        assert_eq!(sys.channel_stats(0).activates, 8);
        assert_eq!(sys.channel_stats(1).activates, 8);
    }

    #[test]
    fn global_faults_reach_channel_local_devices() {
        #[derive(Debug)]
        struct Busy0To100;
        impl ChannelFaults for Busy0To100 {
            fn free_at(&self, bank: usize, t: Cycle) -> Cycle {
                // Global bank 8 (channel 1, local 0) busy until 100.
                if bank == 8 && t < 100 {
                    100
                } else {
                    t
                }
            }
        }
        let mut sys = two_channel();
        sys.set_faults(Arc::new(Busy0To100));
        let blocked = Command::activate(8, 0);
        assert_eq!(MemorySystem::earliest(&sys, &blocked, 0), 100);
        let clear = Command::activate(0, 0);
        assert_eq!(MemorySystem::earliest(&sys, &clear, 0), 0);
    }

    #[test]
    fn out_of_range_bank_is_rejected_globally() {
        let mut sys = two_channel();
        let err = MemorySystem::issue_at(&mut sys, &Command::activate(16, 0), 0).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::NoSuchBank {
                bank: 16,
                banks: 16
            }
        ));
    }

    #[test]
    fn split_by_channel_localizes_banks_and_keeps_order() {
        let records = [
            CommandRecord {
                cycle: 0,
                cmd: Command::activate(9, 3),
            },
            CommandRecord {
                cycle: 4,
                cmd: Command::activate(0, 1),
            },
            CommandRecord {
                cycle: 12,
                cmd: Command::read(9, 16).with_auto_precharge(),
            },
            CommandRecord {
                cycle: 20,
                cmd: Command::precharge(17), // beyond channel 1: dropped
            },
        ];
        let split = split_by_channel(&records, 2, 8);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].len(), 1);
        assert_eq!(split[0][0].cmd, Command::activate(0, 1));
        assert_eq!(split[1].len(), 2);
        assert_eq!(split[1][0].cycle, 0);
        assert_eq!(split[1][0].cmd, Command::activate(1, 3));
        assert_eq!(split[1][1].cmd, Command::read(1, 16).with_auto_precharge());
    }

    fn chaos_system(spec: &str) -> MemorySystem {
        let mut sys = two_channel();
        sys.set_chaos(FaultInjector::new(
            &faults::FaultPlan::parse(spec).unwrap(),
            7,
        ));
        sys
    }

    /// Read one word from `bank` starting no earlier than `at`,
    /// returning the launch cycle of the COL command.
    fn read_once(sys: &mut MemorySystem, bank: usize, row: u64, at: Cycle) -> Cycle {
        let act = Command::activate(bank, row);
        let t = MemorySystem::earliest(sys, &act, at);
        MemorySystem::issue_at(sys, &act, t).unwrap();
        let col = Command::read(bank, 0);
        let t = MemorySystem::earliest(sys, &col, at);
        MemorySystem::issue_at(sys, &col, t).unwrap();
        t
    }

    #[test]
    fn chaosless_injector_is_ignored() {
        let sys = chaos_system("busy:0:100:10");
        assert!(!sys.has_chaos());
        assert!(sys.chaos_stats_total().is_clean());
    }

    #[test]
    fn brownout_penalizes_only_its_channel_and_window() {
        // Channel 1 (banks 8..16) browns out over [0, 10_000) at 3x.
        let mut sys = chaos_system("brownout:1:0:10000:3");
        assert!(sys.has_chaos());
        read_once(&mut sys, 0, 0, 0);
        assert!(sys.chaos_stats()[0].is_clean(), "channel 0 is healthy");
        read_once(&mut sys, 8, 0, 0);
        let t_pack = sys.timing().t_pack;
        let st = sys.chaos_stats()[1];
        assert_eq!(st.degraded_commands, 1);
        assert_eq!(st.brownout_penalty_cycles, 2 * t_pack);
        assert_eq!(st.devfail_penalty_cycles, 0);
        assert_eq!(st.outages_observed, 0);
        // Totals are the exact per-channel sum.
        assert_eq!(sys.chaos_stats_total().lost_cycles(), 2 * t_pack);
        // After the window the channel is healthy again.
        read_once(&mut sys, 9, 0, 20_000);
        assert_eq!(sys.chaos_stats()[1].degraded_commands, 1);
    }

    #[test]
    fn outage_defers_delivery_and_timestamps_recovery() {
        // Channel 0 fully out over [0, 400).
        let mut sys = chaos_system("outage:0:0:400");
        let act = Command::activate(0, 0);
        // Launch is immediate; delivery waits for recovery.
        assert_eq!(MemorySystem::earliest(&sys, &act, 0), 0);
        MemorySystem::issue_at(&mut sys, &act, 0).unwrap();
        let st = sys.chaos_stats()[0];
        assert_eq!(st.deferred_commands, 1);
        assert_eq!(st.deferred_cycles, 400);
        assert_eq!(st.outages_observed, 1);
        assert_eq!(st.mttr_cycles, 400, "MTTR equals the injected window");
        assert_eq!(st.last_recovery_at, Some(400));
        // A COL against the opened row is gated by delivery at 400.
        let col = Command::read(0, 0);
        let t = MemorySystem::earliest(&sys, &col, 0);
        MemorySystem::issue_at(&mut sys, &col, t).unwrap();
        let st = sys.chaos_stats()[0];
        // Second deferred command reuses the already-counted window.
        assert!(st.deferred_commands >= 1);
        assert_eq!(st.outages_observed, 1, "each window counts once");
        // The other channel never saw it.
        assert!(sys.chaos_stats()[1].is_clean());
    }

    #[test]
    fn devfail_degrades_one_device_forever() {
        // Two devices per channel: banks 0..8 device 0, 8..16 device 1,
        // all on one channel.
        let cfg = DeviceConfig {
            devices: 2,
            ..DeviceConfig::default()
        };
        let topo = Topology {
            channels: 1,
            devices_per_channel: 2,
            remote_penalty: Vec::new(),
        };
        let mut sys = MemorySystem::new(cfg, topo);
        sys.set_chaos(FaultInjector::new(
            &faults::FaultPlan::parse("devfail:0:1:0:2").unwrap(),
            7,
        ));
        let t_pack = sys.timing().t_pack;
        read_once(&mut sys, 0, 0, 0);
        assert_eq!(sys.chaos_stats()[0].devfail_penalty_cycles, 0);
        read_once(&mut sys, 8, 0, 0);
        let st = sys.chaos_stats()[0];
        assert_eq!(st.devfail_penalty_cycles, t_pack);
        assert_eq!(st.brownout_penalty_cycles, 0);
        // Still degraded much later: the failure is permanent.
        read_once(&mut sys, 9, 0, 1 << 20);
        assert_eq!(sys.chaos_stats()[0].devfail_penalty_cycles, 2 * t_pack);
    }

    #[test]
    fn chaos_earliest_agrees_with_issue_at() {
        let mut sys = chaos_system("brownout:0:0:5000:4;outage:1:100:300");
        for (bank, at) in [(0usize, 0u64), (1, 50), (8, 0), (9, 150), (2, 6000)] {
            let act = Command::activate(bank, 0);
            let t = MemorySystem::earliest(&sys, &act, at);
            assert!(t >= at);
            MemorySystem::issue_at(&mut sys, &act, t)
                .unwrap_or_else(|e| panic!("bank {bank} at {at}: {e:?}"));
            let col = Command::read(bank, 0);
            let t = MemorySystem::earliest(&sys, &col, at);
            MemorySystem::issue_at(&mut sys, &col, t)
                .unwrap_or_else(|e| panic!("bank {bank} COL at {at}: {e:?}"));
        }
        // Both channels saw chaos; totals absorb both.
        let total = sys.chaos_stats_total();
        assert_eq!(
            total.lost_cycles(),
            sys.chaos_stats()[0].lost_cycles() + sys.chaos_stats()[1].lost_cycles()
        );
        assert_eq!(total.outages_observed, 1);
    }

    #[test]
    #[should_panic(expected = "must equal")]
    fn device_count_mismatch_is_rejected() {
        let _ = MemorySystem::new(
            DeviceConfig::default(),
            Topology {
                channels: 2,
                devices_per_channel: 4,
                remote_penalty: Vec::new(),
            },
        );
    }
}
