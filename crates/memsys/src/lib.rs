//! Multi-channel, multi-device memory system for the Direct RDRAM model.
//!
//! The paper models a single Direct Rambus channel with one device; this
//! crate generalizes that substrate to **N channels × M devices per
//! channel** without touching the per-channel timing model:
//!
//! * [`Topology`] — how many channels, how many ganged devices on each,
//!   and an optional per-channel ROW-latency offset that models NUMA-style
//!   asymmetry (a remote channel's row commands arrive late);
//! * [`SystemMap`] — an address-placement layer over
//!   [`rdram::AddressMap`] with three placements: channel-interleaved at
//!   block granularity, device-sequential, and asymmetric/NUMA (all
//!   traffic homed on one channel). Decoded [`Location`]s carry a
//!   *global* bank index (`channel × banks_per_channel + local bank`);
//! * [`MemorySystem`] — owns one [`rdram::Rdram`] instance (bank array +
//!   ROW/COL/DATA buses) per channel and routes globally-banked commands
//!   to the owning channel, aggregating [`rdram::DeviceStats`] with
//!   exact sums.
//!
//! A single-channel system is a transparent passthrough: every command,
//! statistic, and trace record is bit-identical to driving the underlying
//! [`rdram::Rdram`] directly, which is what keeps the committed campaign
//! goldens stable when the topology axes sit at their defaults.
//!
//! # Example
//!
//! ```
//! use memsys::{MemorySystem, Placement, SystemMap, Topology};
//! use rdram::{AddressMap, Command, DeviceConfig, Interleave};
//!
//! # fn main() -> Result<(), rdram::ProtocolError> {
//! let cfg = DeviceConfig::default();
//! let topo = Topology { channels: 2, ..Topology::single() };
//! let map = SystemMap::new(
//!     AddressMap::new(Interleave::Page, &cfg).unwrap(),
//!     &cfg,
//!     &topo,
//!     Placement::default(),
//! )
//! .unwrap();
//! let mut sys = MemorySystem::new(cfg, topo);
//! // Page 0 lands on channel 0, page 4 (addr 4096) on channel 1: their
//! // ACTs ride independent ROW buses and may start on the same cycle.
//! let a = map.decode(0);
//! let b = map.decode(4096);
//! assert_ne!(sys.channel_of_bank(a.bank), sys.channel_of_bank(b.bank));
//! let act_a = Command::activate(a.bank, a.row);
//! let act_b = Command::activate(b.bank, b.row);
//! sys.issue_at(&act_a, sys.earliest(&act_a, 0))?;
//! sys.issue_at(&act_b, sys.earliest(&act_b, 0))?;
//! assert_eq!(sys.stats().activates, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod map;
mod system;
mod topology;

pub use map::{Placement, SystemMap, DEFAULT_BLOCK_BYTES};
pub use system::{split_by_channel, ChannelFaultStats, MemorySystem};
pub use topology::Topology;
