//! Channel/device topology configuration.

use rdram::Cycle;
use serde::{Deserialize, Serialize};

/// Shape of the memory system: how many independent Direct Rambus
/// channels, how many ganged devices on each, and an optional per-channel
/// ROW-latency offset modelling NUMA-style asymmetry.
///
/// Devices on one channel share that channel's ROW/COL/DATA buses (the
/// per-channel [`rdram::Rdram`] already models ganged devices and their
/// per-device `tRR` row concurrency); separate channels are fully
/// independent — their buses never contend with each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Independent channels, each with its own bus triple and bank array.
    pub channels: usize,
    /// RDRAM devices ganged on each channel (the `devices` knob of the
    /// per-channel [`rdram::DeviceConfig`]).
    pub devices_per_channel: usize,
    /// Extra interface-clock cycles a ROW command (ACT/PRER) takes to
    /// reach channel `i` — the command is delivered `remote_penalty[i]`
    /// cycles after the controller launches it. Channels beyond the end
    /// of the vector pay no penalty; an empty vector is a symmetric
    /// system. COL/DATA traffic is not penalized: the asymmetry models
    /// remote *row* latency, which an access-ordering scheduler can hide
    /// by overlapping it with other channels' data transfers.
    pub remote_penalty: Vec<Cycle>,
}

impl Topology {
    /// The paper's topology: one channel, one device, no asymmetry.
    pub fn single() -> Self {
        Topology {
            channels: 1,
            devices_per_channel: 1,
            remote_penalty: Vec::new(),
        }
    }

    /// Whether this is the degenerate single-channel topology (the
    /// penalty is irrelevant with one channel: there is no "remote").
    pub fn is_single(&self) -> bool {
        self.channels == 1
    }

    /// ROW-delivery penalty for channel `ch` (zero when unspecified or
    /// when the system has a single channel).
    pub fn penalty_of(&self, ch: usize) -> Cycle {
        if self.channels <= 1 {
            return 0;
        }
        self.remote_penalty.get(ch).copied().unwrap_or_default()
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: at least
    /// one channel and one device per channel, and no penalty entries for
    /// channels that do not exist.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("the system needs at least one channel".into());
        }
        if self.devices_per_channel == 0 {
            return Err("each channel needs at least one device".into());
        }
        if self.remote_penalty.len() > self.channels {
            return Err(format!(
                "remote_penalty has {} entries for {} channels",
                self.remote_penalty.len(),
                self.channels
            ));
        }
        Ok(())
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_the_papers_topology() {
        let t = Topology::single();
        t.validate().unwrap();
        assert!(t.is_single());
        assert_eq!(t.penalty_of(0), 0);
    }

    #[test]
    fn penalty_defaults_to_zero_beyond_the_vector() {
        let t = Topology {
            channels: 4,
            devices_per_channel: 1,
            remote_penalty: vec![0, 12],
        };
        t.validate().unwrap();
        assert_eq!(t.penalty_of(0), 0);
        assert_eq!(t.penalty_of(1), 12);
        assert_eq!(t.penalty_of(2), 0);
        assert_eq!(t.penalty_of(3), 0);
    }

    #[test]
    fn single_channel_never_pays_a_penalty() {
        let t = Topology {
            remote_penalty: vec![40],
            ..Topology::single()
        };
        assert_eq!(t.penalty_of(0), 0);
    }

    #[test]
    fn validation_rejects_degenerate_shapes() {
        let no_ch = Topology {
            channels: 0,
            ..Topology::single()
        };
        assert!(no_ch.validate().unwrap_err().contains("channel"));
        let no_dev = Topology {
            devices_per_channel: 0,
            ..Topology::single()
        };
        assert!(no_dev.validate().unwrap_err().contains("device"));
        let extra = Topology {
            remote_penalty: vec![1, 2, 3],
            ..Topology::single()
        };
        assert!(extra.validate().unwrap_err().contains("entries"));
    }
}
