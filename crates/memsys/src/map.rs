//! Address placement across channels.
//!
//! The per-channel [`AddressMap`] (CLI/PI interleaving) stays exactly as
//! the paper defines it; [`SystemMap`] layers a *placement* on top that
//! decides which channel each address lives on, then hands the
//! channel-local remainder to the inner map. Decoded locations carry a
//! global bank index so controllers can track conflicts across channels
//! with one flat bank space.

use rdram::{AddressMap, DeviceConfig, Location, PACKET_BYTES};
use serde::{Deserialize, Serialize};

/// Default block granularity for channel interleaving: one 4 KB block,
/// i.e. consecutive 4 KB regions rotate round-robin across channels.
pub const DEFAULT_BLOCK_BYTES: u64 = 4096;

/// How addresses are placed across channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Block `b` lives on channel `b % channels`: bandwidth from every
    /// channel for any stream longer than a few blocks.
    ChannelInterleaved {
        /// Interleaving granularity in bytes.
        block_bytes: u64,
    },
    /// Channel `c` owns the `c`-th contiguous capacity-sized extent:
    /// small working sets see exactly one channel.
    DeviceSequential,
    /// Every address lives on the `home` channel — the asymmetric
    /// placement of a NUMA system accessing one node's memory. The other
    /// channels idle; with a ROW penalty on `home` this is the "remote
    /// memory" end of the bandwidth cliff.
    Numa {
        /// The channel all traffic is homed on.
        home: usize,
    },
}

impl Default for Placement {
    fn default() -> Self {
        Placement::ChannelInterleaved {
            block_bytes: DEFAULT_BLOCK_BYTES,
        }
    }
}

impl Placement {
    /// Parse the CLI/campaign grammar:
    /// `interleaved[:<block_bytes>]` | `sequential` | `numa[:<home>]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn parse(s: &str) -> Result<Placement, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match (head, arg) {
            ("interleaved", None) => Ok(Placement::default()),
            ("interleaved", Some(a)) => {
                let block_bytes: u64 = a
                    .parse()
                    .map_err(|_| format!("bad interleave block size {a:?}"))?;
                Ok(Placement::ChannelInterleaved { block_bytes })
            }
            ("sequential", None) => Ok(Placement::DeviceSequential),
            ("numa", None) => Ok(Placement::Numa { home: 0 }),
            ("numa", Some(a)) => {
                let home: usize = a.parse().map_err(|_| format!("bad NUMA home {a:?}"))?;
                Ok(Placement::Numa { home })
            }
            _ => Err(format!(
                "unknown placement {s:?} (expected interleaved[:bytes], sequential, or numa[:home])"
            )),
        }
    }

    /// Canonical spelling, inverse of [`parse`](Placement::parse):
    /// defaults render without their argument so campaign keys stay
    /// byte-identical to the pre-topology grammar.
    pub fn label(&self) -> String {
        match self {
            Placement::ChannelInterleaved {
                block_bytes: DEFAULT_BLOCK_BYTES,
            } => "interleaved".into(),
            Placement::ChannelInterleaved { block_bytes } => format!("interleaved:{block_bytes}"),
            Placement::DeviceSequential => "sequential".into(),
            Placement::Numa { home: 0 } => "numa".into(),
            Placement::Numa { home } => format!("numa:{home}"),
        }
    }
}

/// Address map for a whole memory system: placement across channels, then
/// the per-channel CLI/PI [`AddressMap`] within the owning channel.
///
/// Decoded [`Location`]s use global banks: channel `c`'s local bank `b`
/// appears as `c * banks_per_channel + b`. [`encode`](SystemMap::encode)
/// inverts [`decode`](SystemMap::decode) exactly on every placement.
#[derive(Debug, Clone)]
pub struct SystemMap {
    inner: AddressMap,
    placement: Placement,
    channels: usize,
    banks_per_channel: usize,
    /// Bytes one channel addresses; the extent size for sequential/NUMA
    /// placement. `u64::MAX` in the single-channel passthrough, where no
    /// placement math runs.
    channel_capacity: u64,
}

impl SystemMap {
    /// Single-channel passthrough: decodes and encodes exactly as the
    /// inner map does.
    pub fn single(inner: AddressMap) -> Self {
        SystemMap {
            banks_per_channel: inner.banks(),
            inner,
            placement: Placement::default(),
            channels: 1,
            channel_capacity: u64::MAX,
        }
    }

    /// A map for `topo.channels` channels, each shaped like `cfg` and
    /// internally interleaved by `inner`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency: an interleave
    /// block that is zero, not packet-aligned, or not dividing the
    /// channel capacity, or a NUMA home beyond the last channel.
    pub fn new(
        inner: AddressMap,
        cfg: &DeviceConfig,
        topo: &crate::Topology,
        placement: Placement,
    ) -> Result<Self, String> {
        topo.validate()?;
        let capacity = cfg.capacity_bytes();
        match placement {
            Placement::ChannelInterleaved { block_bytes } => {
                if block_bytes == 0 || block_bytes % PACKET_BYTES != 0 {
                    return Err(format!(
                        "interleave block ({block_bytes} B) must be a non-zero multiple of the packet size ({PACKET_BYTES} B)"
                    ));
                }
                if !capacity.is_multiple_of(block_bytes) {
                    return Err(format!(
                        "interleave block ({block_bytes} B) must divide the channel capacity ({capacity} B)"
                    ));
                }
            }
            Placement::DeviceSequential => {}
            Placement::Numa { home } => {
                if home >= topo.channels {
                    return Err(format!(
                        "NUMA home channel {home} out of range (system has {} channels)",
                        topo.channels
                    ));
                }
            }
        }
        Ok(SystemMap {
            banks_per_channel: cfg.total_banks(),
            inner,
            placement,
            channels: topo.channels,
            channel_capacity: capacity,
        })
    }

    /// The per-channel interleaving this map layers placement over.
    pub fn inner(&self) -> &AddressMap {
        &self.inner
    }

    /// The placement in force.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Channels the map spreads addresses over.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Banks across the whole system (`channels × banks_per_channel`).
    pub fn banks(&self) -> usize {
        self.channels * self.banks_per_channel
    }

    /// Which channel owns global bank `bank`.
    pub fn channel_of_bank(&self, bank: usize) -> usize {
        bank / self.banks_per_channel
    }

    /// Bytes addressable by one channel.
    pub fn channel_capacity(&self) -> u64 {
        self.channel_capacity
    }

    /// Which channel `addr` lives on, and its address within that channel.
    pub fn split(&self, addr: u64) -> (usize, u64) {
        if self.channels == 1 {
            return (0, addr);
        }
        let n = self.channels as u64;
        match self.placement {
            Placement::ChannelInterleaved { block_bytes } => {
                let block = addr / block_bytes;
                let ch = (block % n) as usize;
                let local = (block / n) * block_bytes + addr % block_bytes;
                (ch, local)
            }
            Placement::DeviceSequential => {
                let ch = ((addr / self.channel_capacity) % n) as usize;
                (ch, addr % self.channel_capacity)
            }
            Placement::Numa { home } => (home, addr % self.channel_capacity),
        }
    }

    /// Decode `addr` to a globally-banked location.
    pub fn decode(&self, addr: u64) -> Location {
        let (ch, local_addr) = self.split(addr);
        let loc = self.inner.decode(local_addr);
        Location {
            bank: ch * self.banks_per_channel + loc.bank,
            row: loc.row,
            col: loc.col,
        }
    }

    /// Encode a globally-banked location back to its address, the exact
    /// inverse of [`decode`](SystemMap::decode) over each placement's
    /// valid address range.
    pub fn encode(&self, loc: Location) -> u64 {
        let ch = loc.bank / self.banks_per_channel;
        let local_addr = self.inner.encode(Location {
            bank: loc.bank % self.banks_per_channel,
            row: loc.row,
            col: loc.col,
        });
        if self.channels == 1 {
            return local_addr;
        }
        let n = self.channels as u64;
        match self.placement {
            Placement::ChannelInterleaved { block_bytes } => {
                let block = local_addr / block_bytes;
                (block * n + ch as u64) * block_bytes + local_addr % block_bytes
            }
            Placement::DeviceSequential => (ch as u64) * self.channel_capacity + local_addr,
            Placement::Numa { .. } => local_addr,
        }
    }

    /// Contiguous bytes an address stream covers before leaving the
    /// current bank: the inner map's chunk, further limited by the
    /// interleave block when placement splits blocks across channels.
    pub fn contiguous_bytes_per_bank(&self) -> u64 {
        let inner = self.inner.contiguous_bytes_per_bank();
        if self.channels == 1 {
            return inner;
        }
        match self.placement {
            Placement::ChannelInterleaved { block_bytes } => inner.min(block_bytes),
            Placement::DeviceSequential | Placement::Numa { .. } => inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use rdram::Interleave;

    fn topo(channels: usize) -> Topology {
        Topology {
            channels,
            ..Topology::single()
        }
    }

    fn map(channels: usize, placement: Placement) -> SystemMap {
        let cfg = DeviceConfig::default();
        SystemMap::new(
            AddressMap::new(Interleave::Page, &cfg).unwrap(),
            &cfg,
            &topo(channels),
            placement,
        )
        .unwrap()
    }

    #[test]
    fn parse_and_label_round_trip() {
        for s in [
            "interleaved",
            "interleaved:8192",
            "sequential",
            "numa",
            "numa:2",
        ] {
            let p = Placement::parse(s).unwrap();
            assert_eq!(p.label(), s, "{s}");
        }
        assert_eq!(
            Placement::parse("interleaved:4096").unwrap().label(),
            "interleaved"
        );
        assert_eq!(Placement::parse("numa:0").unwrap().label(), "numa");
        assert!(Placement::parse("striped").is_err());
        assert!(Placement::parse("interleaved:x").is_err());
        assert!(Placement::parse("numa:y").is_err());
    }

    #[test]
    fn single_channel_is_a_passthrough() {
        let cfg = DeviceConfig::default();
        let inner = AddressMap::new(Interleave::Page, &cfg).unwrap();
        let sys = SystemMap::single(inner.clone());
        for addr in [0u64, 1024, 4096, 65_536, 1_000_448] {
            assert_eq!(sys.decode(addr), inner.decode(addr), "addr {addr}");
            assert_eq!(sys.encode(sys.decode(addr)), addr);
        }
        assert_eq!(
            sys.contiguous_bytes_per_bank(),
            inner.contiguous_bytes_per_bank()
        );
    }

    #[test]
    fn interleaved_blocks_rotate_across_channels() {
        let sys = map(4, Placement::default());
        for block in 0..16u64 {
            let loc = sys.decode(block * DEFAULT_BLOCK_BYTES);
            assert_eq!(
                sys.channel_of_bank(loc.bank),
                (block % 4) as usize,
                "block {block}"
            );
        }
    }

    #[test]
    fn sequential_fills_one_channel_before_the_next() {
        let sys = map(2, Placement::DeviceSequential);
        let cap = sys.channel_capacity();
        assert_eq!(sys.channel_of_bank(sys.decode(0).bank), 0);
        assert_eq!(sys.channel_of_bank(sys.decode(cap - 16).bank), 0);
        assert_eq!(sys.channel_of_bank(sys.decode(cap).bank), 1);
    }

    #[test]
    fn numa_homes_everything_on_one_channel() {
        let sys = map(3, Placement::Numa { home: 2 });
        for addr in [0u64, 4096, 123_456 * 16] {
            assert_eq!(sys.channel_of_bank(sys.decode(addr).bank), 2);
        }
    }

    #[test]
    fn numa_home_must_exist() {
        let cfg = DeviceConfig::default();
        let err = SystemMap::new(
            AddressMap::new(Interleave::Page, &cfg).unwrap(),
            &cfg,
            &topo(2),
            Placement::Numa { home: 2 },
        )
        .unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn decode_encode_is_the_identity_on_every_placement() {
        for placement in [
            Placement::default(),
            Placement::ChannelInterleaved { block_bytes: 64 },
            Placement::DeviceSequential,
        ] {
            let sys = map(4, placement);
            for addr in (0..4 * sys.channel_capacity()).step_by(65_521).chain([
                0,
                16,
                4 * sys.channel_capacity() - 16,
            ]) {
                assert_eq!(
                    sys.encode(sys.decode(addr)),
                    addr,
                    "{placement:?} addr {addr}"
                );
            }
        }
        let numa = map(4, Placement::Numa { home: 1 });
        for addr in (0..numa.channel_capacity()).step_by(65_521) {
            assert_eq!(numa.encode(numa.decode(addr)), addr);
        }
    }

    #[test]
    fn interleave_block_must_divide_capacity() {
        let cfg = DeviceConfig::default();
        let err = SystemMap::new(
            AddressMap::new(Interleave::Page, &cfg).unwrap(),
            &cfg,
            &topo(2),
            Placement::ChannelInterleaved { block_bytes: 48 },
        )
        .unwrap_err();
        assert!(err.contains("divide"));
    }
}
