//! Fault plans: what can go wrong, independent of when it fires.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClause {
    /// A bank (or every bank, when `bank` is `None`) refuses commands for
    /// the first `len` cycles of every `period`-cycle window.
    BankBusy {
        /// The afflicted bank, or `None` for all banks.
        bank: Option<usize>,
        /// Window period in cycles (>= 1).
        period: u64,
        /// Busy cycles at the start of each window (>= 1; `len >= period`
        /// makes the bank permanently busy).
        len: u64,
    },
    /// Each DATA packet is NACKed with probability `permille / 1000` and
    /// must be retried; an access that fails `max_retries + 1` straight
    /// times is a hard error.
    DataNack {
        /// NACK probability in thousandths (0..=1000).
        permille: u32,
        /// Retries allowed per access before the run errors out.
        max_retries: u32,
    },
    /// Channel-wide refresh storm: every bank is busy for the first `len`
    /// cycles of every `period`-cycle window.
    RefreshStorm {
        /// Window period in cycles (>= 1).
        period: u64,
        /// Busy cycles at the start of each window (>= 1).
        len: u64,
    },
    /// The memory controller is stalled — issues no commands at all — for
    /// the first `len` cycles of every `period`-cycle window.
    Stall {
        /// Window period in cycles (>= 1).
        period: u64,
        /// Stalled cycles at the start of each window (>= 1).
        len: u64,
    },
}

impl fmt::Display for FaultClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClause::BankBusy { bank, period, len } => match bank {
                Some(b) => write!(f, "busy:{b}:{period}:{len}"),
                None => write!(f, "busy:*:{period}:{len}"),
            },
            FaultClause::DataNack {
                permille,
                max_retries,
            } => write!(f, "nack:{permille}:{max_retries}"),
            FaultClause::RefreshStorm { period, len } => write!(f, "storm:{period}:{len}"),
            FaultClause::Stall { period, len } => write!(f, "stall:{period}:{len}"),
        }
    }
}

/// A set of fault clauses, applied simultaneously during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The clauses; an empty list injects nothing.
    pub clauses: Vec<FaultClause>,
}

/// A malformed `--faults` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending clause text.
    pub clause: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause '{}': {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// A plan with no clauses.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Parse a `;`-separated clause spec (see the crate docs for the
    /// grammar). Empty clauses are ignored, so trailing `;` is fine.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] naming the first malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut clauses = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            clauses.push(parse_clause(raw)?);
        }
        Ok(FaultPlan { clauses })
    }

    /// Render the plan back to spec syntax (`parse` ∘ `to_spec` is the
    /// identity).
    pub fn to_spec(&self) -> String {
        self.clauses
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(";")
    }

    /// A pseudo-random plan derived entirely from `seed`, sized so a
    /// kernel run under it always terminates within a (generous) cycle
    /// budget: busy/storm/stall duty cycles stay at or below 25% and NACK
    /// probabilities at or below 20% with at least 2 retries.
    ///
    /// Used by the property suite to sweep fault space deterministically.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut h = Hasher::new(seed);
        let mut clauses = Vec::new();
        if h.chance(2) {
            let bank = if h.chance(2) {
                None
            } else {
                Some(h.range(8) as usize)
            };
            let period = 64 + h.range(448);
            let len = 1 + h.range(period / 4);
            clauses.push(FaultClause::BankBusy { bank, period, len });
        }
        if h.chance(2) {
            clauses.push(FaultClause::DataNack {
                permille: 1 + h.range(200) as u32,
                max_retries: 2 + h.range(5) as u32,
            });
        }
        if h.chance(3) {
            let period = 256 + h.range(1792);
            let len = 1 + h.range(period / 8);
            clauses.push(FaultClause::RefreshStorm { period, len });
        }
        if h.chance(3) {
            let period = 128 + h.range(896);
            let len = 1 + h.range(period / 8);
            clauses.push(FaultClause::Stall { period, len });
        }
        if clauses.is_empty() {
            // Guarantee the plan does something: a mild storm.
            let period = 512 + h.range(512);
            clauses.push(FaultClause::RefreshStorm {
                period,
                len: 1 + h.range(period / 16),
            });
        }
        FaultPlan { clauses }
    }
}

fn parse_clause(raw: &str) -> Result<FaultClause, FaultSpecError> {
    let err = |reason: &str| FaultSpecError {
        clause: raw.to_string(),
        reason: reason.to_string(),
    };
    let parts: Vec<&str> = raw.split(':').collect();
    let uint = |s: &str, what: &str| -> Result<u64, FaultSpecError> {
        s.parse::<u64>()
            .map_err(|_| err(&format!("{what} must be an unsigned integer, got '{s}'")))
    };
    let window = |p: &str, l: &str| -> Result<(u64, u64), FaultSpecError> {
        let period = uint(p, "period")?;
        let len = uint(l, "len")?;
        if period == 0 {
            return Err(err("period must be >= 1"));
        }
        if len == 0 {
            return Err(err("len must be >= 1"));
        }
        Ok((period, len))
    };
    match parts.as_slice() {
        ["busy", bank, p, l] => {
            let bank = if *bank == "*" {
                None
            } else {
                Some(uint(bank, "bank")? as usize)
            };
            let (period, len) = window(p, l)?;
            Ok(FaultClause::BankBusy { bank, period, len })
        }
        ["nack", permille, retries] => {
            let permille = uint(permille, "permille")?;
            if permille > 1000 {
                return Err(err("permille must be <= 1000"));
            }
            Ok(FaultClause::DataNack {
                permille: permille as u32,
                max_retries: uint(retries, "retries")? as u32,
            })
        }
        ["storm", p, l] => {
            let (period, len) = window(p, l)?;
            Ok(FaultClause::RefreshStorm { period, len })
        }
        ["stall", p, l] => {
            let (period, len) = window(p, l)?;
            Ok(FaultClause::Stall { period, len })
        }
        [kind, ..] => Err(err(&format!(
            "unknown or malformed clause kind '{kind}' \
             (expected busy:<bank|*>:<period>:<len>, nack:<permille>:<retries>, \
             storm:<period>:<len>, or stall:<period>:<len>)"
        ))),
        [] => Err(err("empty clause")),
    }
}

/// Splitmix64-style stateless hashing used for plan generation.
struct Hasher {
    state: u64,
}

impl Hasher {
    fn new(seed: u64) -> Self {
        Hasher {
            state: seed ^ 0xa076_1d64_78bd_642f,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    fn range(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// True with probability `1/denom`.
    fn chance(&mut self, denom: u64) -> bool {
        self.range(denom) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        for spec in [
            "busy:3:128:16",
            "busy:*:64:8",
            "nack:50:4",
            "storm:512:32",
            "stall:256:16",
            "busy:0:100:25;nack:10:2;storm:1000:50;stall:300:10",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.to_spec(), spec, "round-trip failed for {spec}");
            let again = FaultPlan::parse(&plan.to_spec()).unwrap();
            assert_eq!(again, plan);
        }
    }

    #[test]
    fn trailing_separators_and_whitespace_are_tolerated() {
        let plan = FaultPlan::parse(" busy:1:10:2 ; nack:5:3 ; ").unwrap();
        assert_eq!(plan.clauses.len(), 2);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn bad_specs_are_rejected_with_the_offending_clause() {
        for bad in [
            "bogus:1:2",
            "busy:x:10:2",
            "busy:1:0:2",
            "busy:1:10:0",
            "nack:1001:3",
            "nack:5",
            "storm:10",
            "stall:10:2:3",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            assert!(
                bad.starts_with(e.clause.as_str()) || e.clause == bad,
                "error clause '{}' should reference '{bad}'",
                e.clause
            );
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        for seed in 0..500u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            for c in &a.clauses {
                match *c {
                    FaultClause::BankBusy { period, len, .. } => {
                        assert!(len * 4 <= period + 4, "busy duty too high: {c}")
                    }
                    FaultClause::RefreshStorm { period, len }
                    | FaultClause::Stall { period, len } => {
                        assert!(len * 8 <= period + 8, "window duty too high: {c}")
                    }
                    FaultClause::DataNack {
                        permille,
                        max_retries,
                    } => {
                        assert!(permille <= 200 && max_retries >= 2);
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_vary_the_plan() {
        let distinct: std::collections::HashSet<String> =
            (0..64).map(|s| FaultPlan::from_seed(s).to_spec()).collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct plans",
            distinct.len()
        );
    }
}
