//! Fault plans: what can go wrong, independent of when it fires.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClause {
    /// A bank (or every bank, when `bank` is `None`) refuses commands for
    /// the first `len` cycles of every `period`-cycle window.
    BankBusy {
        /// The afflicted bank, or `None` for all banks.
        bank: Option<usize>,
        /// Window period in cycles (>= 1).
        period: u64,
        /// Busy cycles at the start of each window (>= 1; `len >= period`
        /// makes the bank permanently busy).
        len: u64,
    },
    /// Each DATA packet is NACKed with probability `permille / 1000` and
    /// must be retried; an access that fails `max_retries + 1` straight
    /// times is a hard error.
    DataNack {
        /// NACK probability in thousandths (0..=1000).
        permille: u32,
        /// Retries allowed per access before the run errors out.
        max_retries: u32,
    },
    /// Channel-wide refresh storm: every bank is busy for the first `len`
    /// cycles of every `period`-cycle window.
    RefreshStorm {
        /// Window period in cycles (>= 1).
        period: u64,
        /// Busy cycles at the start of each window (>= 1).
        len: u64,
    },
    /// The memory controller is stalled — issues no commands at all — for
    /// the first `len` cycles of every `period`-cycle window.
    Stall {
        /// Window period in cycles (>= 1).
        period: u64,
        /// Stalled cycles at the start of each window (>= 1).
        len: u64,
    },
    /// Channel `channel` browns out over one absolute window: DATA
    /// transfers launched during `[from, from + len)` cost `mult` times
    /// their healthy cycle count. Interpreted by the memory-system layer;
    /// per-device queries ignore it.
    ChannelBrownout {
        /// The afflicted channel.
        channel: usize,
        /// First cycle of the window.
        from: u64,
        /// Window length in cycles (>= 1).
        len: u64,
        /// Cycle-cost multiplier (>= 2).
        mult: u64,
    },
    /// Channel `channel` is fully out over `[from, from + len)`: commands
    /// launched inside the window are deferred to its end, and the
    /// memory-system layer timestamps the recovery (MTTR accounting).
    ChannelOutage {
        /// The afflicted channel.
        channel: usize,
        /// First cycle of the window.
        from: u64,
        /// Window length in cycles (>= 1).
        len: u64,
    },
    /// Device `device` on channel `channel` fails at cycle `from` and
    /// stays failed: its banks run in degraded mode, paying a `mult`-times
    /// DATA cycle cost from then on.
    DeviceFail {
        /// The channel holding the failed device.
        channel: usize,
        /// The failed device's index within the channel.
        device: usize,
        /// Cycle the device fails.
        from: u64,
        /// Degraded-mode cycle-cost multiplier (>= 2).
        mult: u64,
    },
}

impl FaultClause {
    /// Whether the clause is channel-scoped (interpreted by the
    /// memory-system router rather than by a single device).
    pub fn is_channel_scoped(&self) -> bool {
        matches!(
            self,
            FaultClause::ChannelBrownout { .. }
                | FaultClause::ChannelOutage { .. }
                | FaultClause::DeviceFail { .. }
        )
    }
}

impl fmt::Display for FaultClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClause::BankBusy { bank, period, len } => match bank {
                Some(b) => write!(f, "busy:{b}:{period}:{len}"),
                None => write!(f, "busy:*:{period}:{len}"),
            },
            FaultClause::DataNack {
                permille,
                max_retries,
            } => write!(f, "nack:{permille}:{max_retries}"),
            FaultClause::RefreshStorm { period, len } => write!(f, "storm:{period}:{len}"),
            FaultClause::Stall { period, len } => write!(f, "stall:{period}:{len}"),
            FaultClause::ChannelBrownout {
                channel,
                from,
                len,
                mult,
            } => write!(f, "brownout:{channel}:{from}:{len}:{mult}"),
            FaultClause::ChannelOutage { channel, from, len } => {
                write!(f, "outage:{channel}:{from}:{len}")
            }
            FaultClause::DeviceFail {
                channel,
                device,
                from,
                mult,
            } => write!(f, "devfail:{channel}:{device}:{from}:{mult}"),
        }
    }
}

/// A set of fault clauses, applied simultaneously during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The clauses; an empty list injects nothing.
    pub clauses: Vec<FaultClause>,
}

/// A malformed `--faults` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending clause text.
    pub clause: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause '{}': {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// A plan with no clauses.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Parse a `;`-separated clause spec (see the crate docs for the
    /// grammar). Empty clauses are ignored, so trailing `;` is fine.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] naming the first malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut clauses = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            clauses.push(parse_clause(raw)?);
        }
        Ok(FaultPlan { clauses })
    }

    /// Render the plan back to spec syntax (`parse` ∘ `to_spec` is the
    /// identity).
    pub fn to_spec(&self) -> String {
        self.clauses
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(";")
    }

    /// A pseudo-random plan derived entirely from `seed`, sized so a
    /// kernel run under it always terminates within a (generous) cycle
    /// budget: busy/storm/stall duty cycles stay at or below 25% and NACK
    /// probabilities at or below 20% with at least 2 retries.
    ///
    /// Used by the property suite to sweep fault space deterministically.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut h = Hasher::new(seed);
        let mut clauses = Vec::new();
        if h.chance(2) {
            let bank = if h.chance(2) {
                None
            } else {
                Some(h.range(8) as usize)
            };
            let period = 64 + h.range(448);
            let len = 1 + h.range(period / 4);
            clauses.push(FaultClause::BankBusy { bank, period, len });
        }
        if h.chance(2) {
            clauses.push(FaultClause::DataNack {
                permille: 1 + h.range(200) as u32,
                max_retries: 2 + h.range(5) as u32,
            });
        }
        if h.chance(3) {
            let period = 256 + h.range(1792);
            let len = 1 + h.range(period / 8);
            clauses.push(FaultClause::RefreshStorm { period, len });
        }
        if h.chance(3) {
            let period = 128 + h.range(896);
            let len = 1 + h.range(period / 8);
            clauses.push(FaultClause::Stall { period, len });
        }
        if clauses.is_empty() {
            // Guarantee the plan does something: a mild storm.
            let period = 512 + h.range(512);
            clauses.push(FaultClause::RefreshStorm {
                period,
                len: 1 + h.range(period / 16),
            });
        }
        FaultPlan { clauses }
    }

    /// A pseudo-random channel-scoped chaos plan over `channels` channels:
    /// one brownout, usually an outage, and occasionally a device failure,
    /// with windows bounded well below the controllers' livelock watchdog
    /// so closed-loop soaks always terminate.
    pub fn chaos_from_seed(seed: u64, channels: usize) -> FaultPlan {
        let mut h = Hasher::new(seed ^ 0x5bd1_e995_c2b2_ae35);
        let channels = channels.max(1) as u64;
        let mut clauses = vec![FaultClause::ChannelBrownout {
            channel: h.range(channels) as usize,
            from: 256 + h.range(2048),
            len: 256 + h.range(2048),
            mult: 2 + h.range(3),
        }];
        if !h.chance(3) {
            clauses.push(FaultClause::ChannelOutage {
                channel: h.range(channels) as usize,
                from: 512 + h.range(4096),
                len: 128 + h.range(1024),
            });
        }
        if h.chance(4) {
            clauses.push(FaultClause::DeviceFail {
                channel: h.range(channels) as usize,
                device: h.range(4) as usize,
                from: 1024 + h.range(4096),
                mult: 2 + h.range(2),
            });
        }
        FaultPlan { clauses }
    }

    /// Whether the plan carries any channel-scoped clause (and so needs the
    /// memory-system chaos path at all).
    pub fn has_channel_faults(&self) -> bool {
        self.clauses.iter().any(FaultClause::is_channel_scoped)
    }

    /// The plan as seen by a run that starts `origin` cycles into the
    /// plan's absolute timeline: channel-scoped windows slide down by
    /// `origin` (clamped at 0 when already underway) and fully expired
    /// brownout/outage windows drop out; device failures persist; device-
    /// local periodic clauses are phase-free and pass through unchanged.
    pub fn shifted(&self, origin: u64) -> FaultPlan {
        let clauses = self
            .clauses
            .iter()
            .filter_map(|c| match *c {
                FaultClause::ChannelBrownout {
                    channel,
                    from,
                    len,
                    mult,
                } => {
                    let end = from.saturating_add(len);
                    (end > origin).then(|| FaultClause::ChannelBrownout {
                        channel,
                        from: from.saturating_sub(origin),
                        len: end.saturating_sub(from.max(origin)),
                        mult,
                    })
                }
                FaultClause::ChannelOutage { channel, from, len } => {
                    let end = from.saturating_add(len);
                    (end > origin).then(|| FaultClause::ChannelOutage {
                        channel,
                        from: from.saturating_sub(origin),
                        len: end.saturating_sub(from.max(origin)),
                    })
                }
                FaultClause::DeviceFail {
                    channel,
                    device,
                    from,
                    mult,
                } => Some(FaultClause::DeviceFail {
                    channel,
                    device,
                    from: from.saturating_sub(origin),
                    mult,
                }),
                other => Some(other),
            })
            .collect();
        FaultPlan { clauses }
    }

    /// Worst-case budget bounds for the channel-scoped clauses:
    /// `(max_mult, total_window_cycles)` — the largest cycle-cost
    /// multiplier any clause can apply (>= 1) and the summed length of all
    /// finite brownout/outage windows. Runners widen their livelock
    /// budgets by these before executing a chaos plan.
    pub fn chaos_bounds(&self) -> (u64, u64) {
        let mut max_mult = 1u64;
        let mut window_sum = 0u64;
        for c in &self.clauses {
            match *c {
                FaultClause::ChannelBrownout { len, mult, .. } => {
                    max_mult = max_mult.max(mult);
                    window_sum = window_sum.saturating_add(len);
                }
                FaultClause::ChannelOutage { len, .. } => {
                    window_sum = window_sum.saturating_add(len);
                }
                FaultClause::DeviceFail { mult, .. } => {
                    max_mult = max_mult.max(mult);
                }
                FaultClause::BankBusy { .. }
                | FaultClause::DataNack { .. }
                | FaultClause::RefreshStorm { .. }
                | FaultClause::Stall { .. } => {}
            }
        }
        (max_mult, window_sum)
    }

    /// The absolute `[from, end)` outage windows declared for `channel`,
    /// in clause order. MTTR reconciliation checks measured recovery
    /// timestamps against exactly these windows.
    pub fn outage_windows(&self, channel: usize) -> Vec<(u64, u64)> {
        self.clauses
            .iter()
            .filter_map(|c| match *c {
                FaultClause::ChannelOutage {
                    channel: ch,
                    from,
                    len,
                } => (ch == channel).then_some((from, from.saturating_add(len))),
                _ => None,
            })
            .collect()
    }
}

fn parse_clause(raw: &str) -> Result<FaultClause, FaultSpecError> {
    let err = |reason: &str| FaultSpecError {
        clause: raw.to_string(),
        reason: reason.to_string(),
    };
    let parts: Vec<&str> = raw.split(':').collect();
    let uint = |s: &str, what: &str| -> Result<u64, FaultSpecError> {
        s.parse::<u64>()
            .map_err(|_| err(&format!("{what} must be an unsigned integer, got '{s}'")))
    };
    let window = |p: &str, l: &str| -> Result<(u64, u64), FaultSpecError> {
        let period = uint(p, "period")?;
        let len = uint(l, "len")?;
        if period == 0 {
            return Err(err("period must be >= 1"));
        }
        if len == 0 {
            return Err(err("len must be >= 1"));
        }
        Ok((period, len))
    };
    match parts.as_slice() {
        ["busy", bank, p, l] => {
            let bank = if *bank == "*" {
                None
            } else {
                Some(uint(bank, "bank")? as usize)
            };
            let (period, len) = window(p, l)?;
            Ok(FaultClause::BankBusy { bank, period, len })
        }
        ["nack", permille, retries] => {
            let permille = uint(permille, "permille")?;
            if permille > 1000 {
                return Err(err("permille must be <= 1000"));
            }
            Ok(FaultClause::DataNack {
                permille: permille as u32,
                max_retries: uint(retries, "retries")? as u32,
            })
        }
        ["storm", p, l] => {
            let (period, len) = window(p, l)?;
            Ok(FaultClause::RefreshStorm { period, len })
        }
        ["stall", p, l] => {
            let (period, len) = window(p, l)?;
            Ok(FaultClause::Stall { period, len })
        }
        ["brownout", ch, from, len, mult] => {
            let channel = uint(ch, "channel")? as usize;
            let from = uint(from, "from")?;
            let len = uint(len, "len")?;
            let mult = uint(mult, "mult")?;
            if len == 0 {
                return Err(err("len must be >= 1"));
            }
            if mult < 2 {
                return Err(err("mult must be >= 2 (1 is healthy)"));
            }
            Ok(FaultClause::ChannelBrownout {
                channel,
                from,
                len,
                mult,
            })
        }
        ["outage", ch, from, len] => {
            let channel = uint(ch, "channel")? as usize;
            let from = uint(from, "from")?;
            let len = uint(len, "len")?;
            if len == 0 {
                return Err(err("len must be >= 1"));
            }
            Ok(FaultClause::ChannelOutage { channel, from, len })
        }
        ["devfail", ch, dev, from, mult] => {
            let channel = uint(ch, "channel")? as usize;
            let device = uint(dev, "device")? as usize;
            let from = uint(from, "from")?;
            let mult = uint(mult, "mult")?;
            if mult < 2 {
                return Err(err("mult must be >= 2 (1 is healthy)"));
            }
            Ok(FaultClause::DeviceFail {
                channel,
                device,
                from,
                mult,
            })
        }
        [kind, ..] => Err(err(&format!(
            "unknown or malformed clause kind '{kind}' \
             (expected busy:<bank|*>:<period>:<len>, nack:<permille>:<retries>, \
             storm:<period>:<len>, stall:<period>:<len>, \
             brownout:<ch>:<from>:<len>:<mult>, outage:<ch>:<from>:<len>, \
             or devfail:<ch>:<dev>:<from>:<mult>)"
        ))),
        [] => Err(err("empty clause")),
    }
}

/// Splitmix64-style stateless hashing used for plan generation.
struct Hasher {
    state: u64,
}

impl Hasher {
    fn new(seed: u64) -> Self {
        Hasher {
            state: seed ^ 0xa076_1d64_78bd_642f,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    fn range(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// True with probability `1/denom`.
    fn chance(&mut self, denom: u64) -> bool {
        self.range(denom) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        for spec in [
            "busy:3:128:16",
            "busy:*:64:8",
            "nack:50:4",
            "storm:512:32",
            "stall:256:16",
            "busy:0:100:25;nack:10:2;storm:1000:50;stall:300:10",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.to_spec(), spec, "round-trip failed for {spec}");
            let again = FaultPlan::parse(&plan.to_spec()).unwrap();
            assert_eq!(again, plan);
        }
    }

    #[test]
    fn trailing_separators_and_whitespace_are_tolerated() {
        let plan = FaultPlan::parse(" busy:1:10:2 ; nack:5:3 ; ").unwrap();
        assert_eq!(plan.clauses.len(), 2);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn bad_specs_are_rejected_with_the_offending_clause() {
        for bad in [
            "bogus:1:2",
            "busy:x:10:2",
            "busy:1:0:2",
            "busy:1:10:0",
            "nack:1001:3",
            "nack:5",
            "storm:10",
            "stall:10:2:3",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            assert!(
                bad.starts_with(e.clause.as_str()) || e.clause == bad,
                "error clause '{}' should reference '{bad}'",
                e.clause
            );
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        for seed in 0..500u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            for c in &a.clauses {
                match *c {
                    FaultClause::BankBusy { period, len, .. } => {
                        assert!(len * 4 <= period + 4, "busy duty too high: {c}")
                    }
                    FaultClause::RefreshStorm { period, len }
                    | FaultClause::Stall { period, len } => {
                        assert!(len * 8 <= period + 8, "window duty too high: {c}")
                    }
                    FaultClause::DataNack {
                        permille,
                        max_retries,
                    } => {
                        assert!(permille <= 200 && max_retries >= 2);
                    }
                    FaultClause::ChannelBrownout { .. }
                    | FaultClause::ChannelOutage { .. }
                    | FaultClause::DeviceFail { .. } => {
                        unreachable!("from_seed emits no channel-scoped clauses: {c}")
                    }
                }
            }
        }
    }

    #[test]
    fn channel_scoped_specs_round_trip() {
        for spec in [
            "brownout:0:100:200:3",
            "outage:1:500:64",
            "devfail:0:2:1000:2",
            "brownout:1:0:1:2;outage:0:0:1;devfail:3:0:0:4",
            "busy:*:64:8;brownout:0:100:50:2;nack:10:2",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.to_spec(), spec, "round-trip failed for {spec}");
            assert!(plan.has_channel_faults());
            assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
        }
        assert!(!FaultPlan::parse("busy:*:64:8")
            .unwrap()
            .has_channel_faults());
    }

    #[test]
    fn bad_channel_specs_are_rejected() {
        for bad in [
            "brownout:0:100:0:3",  // zero-length window
            "brownout:0:100:10:1", // mult 1 is healthy
            "brownout:0:100:10",   // missing mult
            "outage:0:100:0",      // zero-length window
            "outage:0:100",        // missing len
            "devfail:0:1:100:1",   // mult 1 is healthy
            "devfail:0:1:100",     // missing mult
            "devfail:x:1:100:2",   // non-integer channel
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted bad spec {bad}");
        }
    }

    #[test]
    fn plans_round_trip_through_json() {
        for spec in [
            "busy:3:128:16;nack:50:4;storm:512:32;stall:256:16",
            "brownout:0:100:200:3;outage:1:500:64;devfail:0:2:1000:2",
            "busy:*:900:40;brownout:1:256:128:2",
            "",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            // Structural round trip: text -> Value matches direct to_value.
            let json = serde_json::to_string(&plan).unwrap();
            let parsed = serde_json::from_str(&json).unwrap();
            assert_eq!(
                parsed,
                serde_json::to_value(&plan).unwrap(),
                "JSON text round-trip changed the plan for {spec}"
            );
            // Campaign-spec round trip: plans are recorded as spec strings
            // inside campaign JSON; extracting and re-parsing must replay
            // the plan byte-identically.
            let doc = serde_json::to_string(&serde_json::Value::String(plan.to_spec())).unwrap();
            let recorded = match serde_json::from_str(&doc).unwrap() {
                serde_json::Value::String(s) => s,
                other => panic!("expected a JSON string, got {other:?}"),
            };
            let replayed = FaultPlan::parse(&recorded).unwrap();
            assert_eq!(replayed, plan);
            assert_eq!(replayed.to_spec(), plan.to_spec());
        }
    }

    #[test]
    fn shifted_slides_and_drops_channel_windows() {
        let plan =
            FaultPlan::parse("brownout:0:100:50:3;outage:1:40:20;devfail:0:1:80:2;storm:512:32")
                .unwrap();
        // Before anything starts: unchanged.
        assert_eq!(plan.shifted(0), plan);
        // Mid-brownout: window clamps to "now", remaining length only.
        let mid = plan.shifted(120);
        assert_eq!(
            mid.to_spec(),
            "brownout:0:0:30:3;devfail:0:1:0:2;storm:512:32"
        );
        // Past every window: only the persistent failure and the periodic
        // storm survive.
        let late = plan.shifted(10_000);
        assert_eq!(late.to_spec(), "devfail:0:1:0:2;storm:512:32");
        assert!(late.has_channel_faults());
    }

    #[test]
    fn chaos_bounds_cover_the_worst_clause() {
        let plan =
            FaultPlan::parse("brownout:0:100:50:3;outage:1:40:20;devfail:0:1:80:5;storm:512:32")
                .unwrap();
        assert_eq!(plan.chaos_bounds(), (5, 70));
        assert_eq!(FaultPlan::none().chaos_bounds(), (1, 0));
        assert_eq!(plan.outage_windows(1), vec![(40, 60)]);
        assert!(plan.outage_windows(0).is_empty());
    }

    #[test]
    fn chaos_seeds_are_deterministic_and_bounded() {
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..128u64 {
            let a = FaultPlan::chaos_from_seed(seed, 2);
            assert_eq!(a, FaultPlan::chaos_from_seed(seed, 2));
            assert!(a.has_channel_faults());
            distinct.insert(a.to_spec());
            let (mult, windows) = a.chaos_bounds();
            assert!((2..=5).contains(&mult), "mult out of range: {mult}");
            assert!(windows <= 2048 + 2048 + 1024 + 128, "windows = {windows}");
            for c in &a.clauses {
                match *c {
                    FaultClause::ChannelBrownout { channel, from, .. }
                    | FaultClause::ChannelOutage { channel, from, .. } => {
                        assert!(channel < 2);
                        // Every window ends well under the 50k-cycle
                        // controller watchdog.
                        assert!(from < 8192);
                    }
                    FaultClause::DeviceFail {
                        channel, device, ..
                    } => {
                        assert!(channel < 2 && device < 4);
                    }
                    _ => unreachable!("chaos_from_seed emits only channel clauses"),
                }
            }
        }
        assert!(
            distinct.len() > 64,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn seeds_vary_the_plan() {
        let distinct: std::collections::HashSet<String> =
            (0..64).map(|s| FaultPlan::from_seed(s).to_spec()).collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct plans",
            distinct.len()
        );
    }
}
