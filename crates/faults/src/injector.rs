//! The injector: a fault plan bound to a seed, answering per-cycle queries.

use rdram::{ChannelFaults, Cycle};

use crate::{FaultClause, FaultPlan};

/// Iteration bound for the busy-window fixpoint in [`FaultInjector::free_at`].
/// Overlapping periodic windows converge in a handful of jumps; hitting the
/// bound means the windows tile (almost) all of time, which we report as
/// "never free" — the controllers' watchdogs then turn starvation into a
/// structured livelock error instead of a hang.
const FIXPOINT_BOUND: u32 = 10_000;

/// A [`FaultPlan`] bound to a seed.
///
/// Every query is a pure function of the plan, the seed, and the query
/// arguments, so clones held by the device model, the MSU, and the baseline
/// controller always agree, and a `(plan, seed)` pair replays identically.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    clauses: Vec<FaultClause>,
    seed: u64,
}

impl FaultInjector {
    /// Bind `plan` to `seed`.
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        FaultInjector {
            clauses: plan.clauses.clone(),
            seed,
        }
    }

    /// An injector that injects nothing.
    pub fn inert() -> Self {
        FaultInjector::default()
    }

    /// Whether the injector has no clauses at all.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The bound seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the controller is fault-stalled (must not issue commands)
    /// at `now`.
    pub fn stalled(&self, now: Cycle) -> bool {
        self.clauses.iter().any(|c| match *c {
            FaultClause::Stall { period, len } => now % period < len,
            _ => false,
        })
    }

    /// Whether the DATA packet of an access to `bank`, whose transfer ends
    /// at `data_end`, is NACKed on retry number `attempt` (0 = first try).
    ///
    /// Keyed on the transfer-end cycle so a retried access (different end
    /// cycle, different attempt number) re-rolls independently.
    pub fn nack_data(&self, bank: usize, data_end: Cycle, attempt: u32) -> bool {
        self.clauses.iter().any(|c| match *c {
            FaultClause::DataNack { permille, .. } => {
                let roll = mix(self.seed, bank as u64, data_end, u64::from(attempt)) % 1000;
                roll < u64::from(permille)
            }
            _ => false,
        })
    }

    /// The largest retry budget any NACK clause grants (0 when no NACK
    /// clause is present).
    pub fn nack_retry_limit(&self) -> u32 {
        self.clauses
            .iter()
            .filter_map(|c| match *c {
                FaultClause::DataNack { max_retries, .. } => Some(max_retries),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Whether any busy/storm clause covers `bank` at cycle `t`.
    pub fn bank_busy(&self, bank: usize, t: Cycle) -> bool {
        self.clauses
            .iter()
            .any(|c| busy_window_end(c, bank, t).is_some())
    }

    /// Whether the injector carries any channel-scoped clause (the
    /// memory-system chaos path is a no-op otherwise).
    pub fn has_channel_faults(&self) -> bool {
        self.clauses.iter().any(FaultClause::is_channel_scoped)
    }

    /// The outage window `(from, end)` covering `channel` at cycle `t`,
    /// if any. A command launched at `t` inside the window is deferred to
    /// `end`; overlapping outages report the furthest end.
    pub fn outage_window(&self, channel: usize, t: Cycle) -> Option<(Cycle, Cycle)> {
        let mut hit: Option<(Cycle, Cycle)> = None;
        for c in &self.clauses {
            if let FaultClause::ChannelOutage {
                channel: ch,
                from,
                len,
            } = *c
            {
                let end = from.saturating_add(len);
                if ch == channel && (from..end).contains(&t) {
                    hit = Some(match hit {
                        Some((f, e)) => (f.min(from), e.max(end)),
                        None => (from, end),
                    });
                }
            }
        }
        hit
    }

    /// The brownout cycle-cost multiplier for `channel` at cycle `t`
    /// (1 = healthy; overlapping brownouts report the worst).
    pub fn channel_cost_mult(&self, channel: usize, t: Cycle) -> u64 {
        self.clauses
            .iter()
            .filter_map(|c| match *c {
                FaultClause::ChannelBrownout {
                    channel: ch,
                    from,
                    len,
                    mult,
                } => ((ch == channel) && (from..from.saturating_add(len)).contains(&t))
                    .then_some(mult),
                _ => None,
            })
            .max()
            .unwrap_or(1)
    }

    /// The degraded-mode cycle-cost multiplier for `device` on `channel`
    /// at cycle `t` (1 = healthy; a failed device stays degraded forever).
    pub fn device_cost_mult(&self, channel: usize, device: usize, t: Cycle) -> u64 {
        self.clauses
            .iter()
            .filter_map(|c| match *c {
                FaultClause::DeviceFail {
                    channel: ch,
                    device: dev,
                    from,
                    mult,
                } => (ch == channel && dev == device && t >= from).then_some(mult),
                _ => None,
            })
            .max()
            .unwrap_or(1)
    }
}

impl ChannelFaults for FaultInjector {
    fn free_at(&self, bank: usize, mut t: Cycle) -> Cycle {
        if self.clauses.is_empty() {
            return t;
        }
        for _ in 0..FIXPOINT_BOUND {
            let mut moved = false;
            for c in &self.clauses {
                if let Some(end) = busy_window_end(c, bank, t) {
                    if end == Cycle::MAX {
                        return Cycle::MAX;
                    }
                    t = end;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
        Cycle::MAX
    }
}

/// If `clause` makes `bank` busy at `t`, the first cycle after the current
/// window ([`Cycle::MAX`] when the window never ends).
fn busy_window_end(clause: &FaultClause, bank: usize, t: Cycle) -> Option<Cycle> {
    let (period, len) = match *clause {
        FaultClause::BankBusy {
            bank: b,
            period,
            len,
        } => {
            if b.is_some_and(|b| b != bank) {
                return None;
            }
            (period, len)
        }
        FaultClause::RefreshStorm { period, len } => (period, len),
        // Channel-scoped clauses are interpreted by the memory-system
        // router, not by per-device bank queries.
        FaultClause::DataNack { .. }
        | FaultClause::Stall { .. }
        | FaultClause::ChannelBrownout { .. }
        | FaultClause::ChannelOutage { .. }
        | FaultClause::DeviceFail { .. } => return None,
    };
    if len >= period {
        // The busy window covers the whole period: permanently busy.
        return Some(Cycle::MAX);
    }
    let phase = t % period;
    (phase < len).then(|| t + (len - phase))
}

/// Stateless splitmix64-style combine of the query coordinates.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(c.wrapping_mul(0x2545_f491_4f6c_dd1d));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdram::ChannelFaults;

    fn injector(spec: &str) -> FaultInjector {
        FaultInjector::new(&FaultPlan::parse(spec).unwrap(), 42)
    }

    #[test]
    fn inert_injector_is_transparent() {
        let inj = FaultInjector::inert();
        assert!(inj.is_empty());
        for t in [0u64, 1, 99, 1 << 40] {
            assert_eq!(inj.free_at(0, t), t);
            assert!(!inj.stalled(t));
            assert!(!inj.nack_data(0, t, 0));
        }
        assert_eq!(inj.nack_retry_limit(), 0);
    }

    #[test]
    fn busy_windows_are_periodic_and_bank_scoped() {
        let inj = injector("busy:3:100:10");
        // Bank 3 is busy for cycles [0, 10) of each 100-cycle period.
        assert_eq!(inj.free_at(3, 0), 10);
        assert_eq!(inj.free_at(3, 9), 10);
        assert_eq!(inj.free_at(3, 10), 10);
        assert_eq!(inj.free_at(3, 99), 99);
        assert_eq!(inj.free_at(3, 205), 210);
        // Other banks are untouched.
        assert_eq!(inj.free_at(2, 0), 0);
        assert!(inj.bank_busy(3, 5) && !inj.bank_busy(2, 5));
    }

    #[test]
    fn wildcard_busy_and_storms_hit_every_bank() {
        for spec in ["busy:*:100:10", "storm:100:10"] {
            let inj = injector(spec);
            for bank in 0..8 {
                assert_eq!(inj.free_at(bank, 5), 10, "{spec} bank {bank}");
            }
        }
    }

    #[test]
    fn permanent_busy_reports_never_free() {
        let inj = injector("busy:0:1:1");
        assert_eq!(inj.free_at(0, 0), Cycle::MAX);
        assert_eq!(inj.free_at(0, 12345), Cycle::MAX);
        assert_eq!(inj.free_at(1, 12345), 12345);
    }

    #[test]
    fn overlapping_windows_converge_to_a_common_gap() {
        let inj = injector("busy:0:7:3;storm:11:4");
        for t in 0..2000u64 {
            let free = inj.free_at(0, t);
            assert!(free >= t);
            assert!(!inj.bank_busy(0, free), "free_at({t}) = {free} still busy");
            // Idempotent and monotone.
            assert_eq!(inj.free_at(0, free), free);
            assert!(inj.free_at(0, t + 1) >= free || free > t);
        }
    }

    #[test]
    fn stalls_follow_their_window() {
        let inj = injector("stall:50:5");
        for t in 0..200u64 {
            assert_eq!(inj.stalled(t), t % 50 < 5, "cycle {t}");
        }
        // Stalls do not make banks busy.
        assert_eq!(inj.free_at(0, 2), 2);
    }

    #[test]
    fn nack_rate_tracks_permille_and_is_deterministic() {
        let inj = injector("nack:250:3");
        assert_eq!(inj.nack_retry_limit(), 3);
        let hits = (0..4000u64)
            .filter(|&t| inj.nack_data(t as usize % 8, t * 4, 0))
            .count();
        // 25% +- 5% over 4000 rolls.
        assert!((800..=1200).contains(&hits), "hits = {hits}");
        // Same coordinates, same answer; different attempt re-rolls.
        assert_eq!(inj.nack_data(3, 400, 0), inj.nack_data(3, 400, 0));
        let varies = (0..100u32).any(|a| inj.nack_data(3, 400, a) != inj.nack_data(3, 400, 0));
        assert!(varies, "attempt number never changed the roll");
    }

    #[test]
    fn channel_queries_follow_their_windows() {
        let inj = injector("brownout:0:100:50:3;outage:1:40:20;devfail:0:2:80:4");
        assert!(inj.has_channel_faults());
        // Brownout multiplies only channel 0 inside [100, 150).
        assert_eq!(inj.channel_cost_mult(0, 99), 1);
        assert_eq!(inj.channel_cost_mult(0, 100), 3);
        assert_eq!(inj.channel_cost_mult(0, 149), 3);
        assert_eq!(inj.channel_cost_mult(0, 150), 1);
        assert_eq!(inj.channel_cost_mult(1, 120), 1);
        // Outage covers channel 1 over [40, 60) only.
        assert_eq!(inj.outage_window(1, 39), None);
        assert_eq!(inj.outage_window(1, 40), Some((40, 60)));
        assert_eq!(inj.outage_window(1, 59), Some((40, 60)));
        assert_eq!(inj.outage_window(1, 60), None);
        assert_eq!(inj.outage_window(0, 50), None);
        // Device 2 on channel 0 degrades permanently from cycle 80.
        assert_eq!(inj.device_cost_mult(0, 2, 79), 1);
        assert_eq!(inj.device_cost_mult(0, 2, 80), 4);
        assert_eq!(inj.device_cost_mult(0, 2, 1 << 40), 4);
        assert_eq!(inj.device_cost_mult(0, 1, 500), 1);
        assert_eq!(inj.device_cost_mult(1, 2, 500), 1);
        // Channel clauses never leak into per-device bank queries.
        for bank in 0..8 {
            for t in 0..200u64 {
                assert!(!inj.bank_busy(bank, t));
                assert_eq!(inj.free_at(bank, t), t);
            }
        }
        assert!(!inj.stalled(120));
    }

    #[test]
    fn overlapping_channel_windows_report_the_worst() {
        let inj = injector("brownout:0:0:100:2;brownout:0:50:100:5;outage:0:10:20;outage:0:20:30");
        assert_eq!(inj.channel_cost_mult(0, 25), 2);
        assert_eq!(inj.channel_cost_mult(0, 75), 5);
        assert_eq!(inj.channel_cost_mult(0, 120), 5);
        // Overlapping outages merge to the widest covering span.
        assert_eq!(inj.outage_window(0, 25), Some((10, 50)));
        assert_eq!(inj.outage_window(0, 5), None);
        assert!(!injector("busy:0:10:2").has_channel_faults());
    }

    #[test]
    fn different_seeds_give_different_timelines() {
        let plan = FaultPlan::parse("nack:100:2").unwrap();
        let a = FaultInjector::new(&plan, 1);
        let b = FaultInjector::new(&plan, 2);
        let differs = (0..1000u64).any(|t| a.nack_data(0, t, 0) != b.nack_data(0, t, 0));
        assert!(differs);
    }
}
