//! Deterministic, seeded fault injection for the Rambus stream-memory
//! simulator.
//!
//! A [`FaultPlan`] describes *what* can go wrong — transient bank-busy
//! windows, channel-wide refresh storms, NACKed DATA packets that force
//! bounded retries, and injected controller stalls. A [`FaultInjector`]
//! binds a plan to a seed and answers, as a pure function of `(clause,
//! seed, cycle, bank)`, whether each fault fires. Because every decision is
//! derived by hashing rather than by mutating generator state, the injector
//! is `Clone` and can be consulted independently by the device model
//! ([`rdram::ChannelFaults`]), the SMC's MSU, and the baseline controller
//! without any shared-state coordination — replaying a `(plan, seed)` pair
//! reproduces the exact same fault timeline every time.
//!
//! # Spec grammar
//!
//! Plans parse from compact `;`-separated clause specs (the CLI's
//! `--faults` argument):
//!
//! ```text
//! busy:<bank|*>:<period>:<len>   bank (or all banks) unavailable for the
//!                                first <len> cycles of every <period>
//! nack:<permille>:<retries>      each DATA packet NACKed with probability
//!                                permille/1000; at most <retries> retries
//!                                per access before the run errors out
//! storm:<period>:<len>           refresh storm: all banks busy for <len>
//!                                cycles of every <period>
//! stall:<period>:<len>           controller stalled (no command issue) for
//!                                <len> cycles of every <period>
//! ```
//!
//! ```
//! use faults::{FaultClause, FaultPlan};
//!
//! let plan = FaultPlan::parse("busy:3:128:16;nack:50:4").unwrap();
//! assert_eq!(plan.clauses.len(), 2);
//! assert_eq!(plan.to_spec(), "busy:3:128:16;nack:50:4");
//! assert!(matches!(plan.clauses[1],
//!     FaultClause::DataNack { permille: 50, max_retries: 4 }));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod injector;
mod plan;

pub use injector::FaultInjector;
pub use plan::{FaultClause, FaultPlan, FaultSpecError};
