//! End-to-end timing conformance: every schedule the simulated controllers
//! emit — all four paper kernels, both memory organizations, both access
//! orderings, fault-free and under injected faults — replays through the
//! `checker` crate with zero violations.
//!
//! This is the acceptance gate for the conformance subsystem: the paper's
//! bandwidth numbers are only meaningful if the command streams behind them
//! respect every Figure 2 constraint.

use checker::check;
use faults::FaultPlan;
use kernels::Kernel;
use sim::{run_kernel, MemorySystem, SystemConfig};

const CLI: MemorySystem = MemorySystem::CacheLineInterleaved;
const PI: MemorySystem = MemorySystem::PageInterleaved;

/// Run every paper kernel on `cfg` and assert its recorded command stream
/// is non-empty and violation-free.
fn assert_conformant(base: &SystemConfig, label: &str) {
    for kernel in Kernel::PAPER_SUITE {
        let cfg = base.clone().with_command_recording();
        let r = run_kernel(kernel, 256, 1, &cfg)
            .unwrap_or_else(|e| panic!("{label} {kernel}: run failed: {e}"));
        assert!(
            !r.commands.is_empty(),
            "{label} {kernel}: no commands recorded"
        );
        let violations = check(&cfg.device, &r.commands);
        assert!(
            violations.is_empty(),
            "{label} {kernel}: {}",
            checker::report(&violations)
        );
    }
}

#[test]
fn natural_order_cli_is_conformant() {
    assert_conformant(&SystemConfig::natural_order(CLI), "natural/CLI");
}

#[test]
fn natural_order_pi_is_conformant() {
    assert_conformant(&SystemConfig::natural_order(PI), "natural/PI");
}

#[test]
fn smc_cli_is_conformant() {
    assert_conformant(&SystemConfig::smc(CLI, 64), "smc/CLI");
}

#[test]
fn smc_pi_is_conformant() {
    assert_conformant(&SystemConfig::smc(PI, 64), "smc/PI");
}

#[test]
fn smc_with_refresh_and_speculation_is_conformant() {
    // Refresh commits maintenance commands at future cycles and speculation
    // issues row commands early: the two schedule shapes most likely to
    // disagree with a naive replay.
    let mut cfg = SystemConfig::smc(CLI, 64).with_speculation();
    cfg.refresh = true;
    assert_conformant(&cfg, "smc/CLI+refresh+spec");
}

#[test]
fn faulted_runs_stay_conformant() {
    // Recoverable fault plans slow the schedule (retries, stalls) but every
    // command that reaches the bus must still obey the timing rules.
    let nack = FaultPlan::parse("nack:200:10").expect("valid plan");
    let stall = FaultPlan::parse("stall:100:20").expect("valid plan");
    assert_conformant(
        &SystemConfig::natural_order(CLI).with_faults(nack.clone(), 3),
        "natural/CLI+nack",
    );
    assert_conformant(
        &SystemConfig::smc(PI, 32).with_faults(nack, 3),
        "smc/PI+nack",
    );
    assert_conformant(
        &SystemConfig::smc(PI, 32).with_faults(stall, 7),
        "smc/PI+stall",
    );
}
