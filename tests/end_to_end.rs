//! End-to-end integration: every kernel on every system configuration moves
//! real data through the full simulated memory system and must reproduce
//! the scalar reference bit-exactly (`run_kernel` verifies internally).

use kernels::Kernel;
use sim::{run_kernel, Alignment, MemorySystem, SystemConfig};
use smc::Policy;

const CLI: MemorySystem = MemorySystem::CacheLineInterleaved;
const PI: MemorySystem = MemorySystem::PageInterleaved;

#[test]
fn every_kernel_runs_on_every_organization_and_ordering() {
    for memory in [CLI, PI] {
        for kernel in Kernel::ALL {
            let naive = run_kernel(kernel, 96, 1, &SystemConfig::natural_order(memory))
                .expect("fault-free run");
            assert!(naive.percent_peak() > 0.0, "{kernel} {memory:?} naive");
            let smc =
                run_kernel(kernel, 96, 1, &SystemConfig::smc(memory, 16)).expect("fault-free run");
            assert!(smc.percent_peak() > 0.0, "{kernel} {memory:?} smc");
        }
    }
}

#[test]
fn smc_beats_natural_order_for_long_unit_stride_vectors() {
    for memory in [CLI, PI] {
        for kernel in Kernel::PAPER_SUITE {
            let naive = run_kernel(kernel, 1024, 1, &SystemConfig::natural_order(memory))
                .expect("fault-free run");
            let smc = run_kernel(kernel, 1024, 1, &SystemConfig::smc(memory, 128))
                .expect("fault-free run");
            assert!(
                smc.percent_peak() > naive.percent_peak(),
                "{kernel} on {}: SMC {:.1}% vs natural order {:.1}%",
                memory.label(),
                smc.percent_peak(),
                naive.percent_peak()
            );
        }
    }
}

#[test]
fn strided_computations_are_bit_exact() {
    // Strides around packet/line/page boundaries; verification is internal.
    for stride in [2, 3, 4, 5, 8, 16, 17] {
        for memory in [CLI, PI] {
            let r = run_kernel(Kernel::Vaxpy, 64, stride, &SystemConfig::smc(memory, 32))
                .expect("fault-free run");
            assert!(
                r.percent_peak() <= 50.0 + 1e-9,
                "stride {stride} exceeds attainable"
            );
        }
    }
}

#[test]
fn all_policies_and_placements_produce_correct_results() {
    for policy in [Policy::RoundRobin, Policy::BankAware] {
        for alignment in [Alignment::Aligned, Alignment::Staggered] {
            for speculative in [false, true] {
                let mut cfg = SystemConfig::smc(PI, 32)
                    .with_alignment(alignment)
                    .with_policy(policy);
                if speculative {
                    cfg = cfg.with_speculation();
                }
                let r = run_kernel(Kernel::Hydro, 256, 1, &cfg).expect("fault-free run");
                assert!(
                    r.percent_peak() > 20.0,
                    "{policy:?} {alignment:?} spec={speculative}: {:.1}%",
                    r.percent_peak()
                );
            }
        }
    }
}

#[test]
fn deeper_fifos_reduce_turnarounds() {
    let turnarounds = |depth| {
        run_kernel(Kernel::Daxpy, 1024, 1, &SystemConfig::smc(CLI, depth))
            .expect("fault-free run")
            .device_stats
            .turnarounds
    };
    let shallow = turnarounds(8);
    let deep = turnarounds(128);
    assert!(
        deep < shallow / 4,
        "128-deep FIFOs should cut turnarounds well below shallow ({shallow} -> {deep})"
    );
}

#[test]
fn page_hit_rates_reflect_the_organization() {
    // PI open-page streams hit the sense amps almost always; CLI closed-page
    // pays a miss per cacheline (every other packet at unit stride).
    let pi =
        run_kernel(Kernel::Daxpy, 1024, 1, &SystemConfig::smc(PI, 64)).expect("fault-free run");
    let cli =
        run_kernel(Kernel::Daxpy, 1024, 1, &SystemConfig::smc(CLI, 64)).expect("fault-free run");
    let pi_rate = pi.device_stats.page_hit_rate().expect("traffic exists");
    let cli_rate = cli.device_stats.page_hit_rate().expect("traffic exists");
    assert!(pi_rate > 0.9, "PI hit rate {pi_rate}");
    assert!(cli_rate < 0.6, "CLI hit rate {cli_rate}");
}

#[test]
fn facade_reexports_compose() {
    // The `rambus` facade exposes the whole stack.
    let cfg = rambus::rdram::DeviceConfig::default();
    let sys = rambus::analytic::cache::StreamSystem::default();
    assert_eq!(cfg.words_per_page(), sys.page_words);
    let k = rambus::kernels::Kernel::Copy;
    assert_eq!(k.total_streams(), 2);
}
