//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use kernels::Kernel;
use rdram::{AddressMap, Command, DeviceConfig, Interleave, Rdram, SenseAmps};
use sim::{run_kernel, Alignment, MemorySystem, SystemConfig};
use smc::{Policy, StreamDescriptor, StreamFifo};

fn arb_interleave() -> impl Strategy<Value = Interleave> {
    prop_oneof![
        Just(Interleave::Page),
        prop::sample::select(vec![16u64, 32, 64, 128])
            .prop_map(|line_bytes| Interleave::Cacheline { line_bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode() is the exact inverse of decode() for every interleaving.
    #[test]
    fn address_map_round_trips(
        interleave in arb_interleave(),
        addr in 0u64..(8 << 20),
    ) {
        let cfg = DeviceConfig::default();
        let map = AddressMap::new(interleave, &cfg).unwrap();
        let loc = map.decode(addr);
        prop_assert!(loc.bank < cfg.banks);
        prop_assert!(loc.col < cfg.page_bytes);
        prop_assert_eq!(map.encode(loc), addr);
    }

    /// Addresses within one contiguous chunk share a (bank, row); the next
    /// chunk moves to the next bank.
    #[test]
    fn interleaving_chunks_are_contiguous(
        interleave in arb_interleave(),
        chunk_idx in 0u64..4096,
    ) {
        let cfg = DeviceConfig::default();
        let map = AddressMap::new(interleave, &cfg).unwrap();
        let chunk = map.contiguous_bytes_per_bank();
        let base = chunk_idx * chunk;
        let first = map.decode(base);
        let last = map.decode(base + chunk - 1);
        prop_assert_eq!(first.bank, last.bank);
        prop_assert_eq!(first.row, last.row);
        let next = map.decode(base + chunk);
        prop_assert_eq!(next.bank, (first.bank + 1) % cfg.banks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A stream FIFO delivers exactly the admitted elements, in order.
    #[test]
    fn fifo_preserves_element_order(
        depth in 2usize..32,
        length in 1u64..200,
        pop_burst in 1usize..8,
    ) {
        let desc = StreamDescriptor::read("x", 0, 1, length);
        let mut fifo = StreamFifo::new(desc, depth);
        let mut delivered = Vec::new();
        let mut now = 0u64;
        while (delivered.len() as u64) < length {
            // Memory side: admit + fulfill while there is room.
            while fifo.ready_for_access(now) {
                let (pkt, _) = fifo.admit_next_packet(now).expect("ready FIFO admits");
                let values: Vec<u64> =
                    pkt.element_range().map(|e| 1000 + e).collect();
                fifo.fulfill_read(&values, now);
            }
            // CPU side: pop a burst.
            for _ in 0..pop_burst {
                if (delivered.len() as u64) == length {
                    break;
                }
                if let Some(v) = fifo.cpu_pop(now) {
                    delivered.push(v);
                } else {
                    break;
                }
            }
            now += 1;
            prop_assert!(now < 10_000, "fifo failed to make progress");
        }
        let expect: Vec<u64> = (0..length).map(|e| 1000 + e).collect();
        prop_assert_eq!(delivered, expect);
    }

    /// Issuing commands at their `earliest` cycle never violates the
    /// protocol, regardless of the access pattern.
    #[test]
    fn device_accepts_any_state_legal_schedule(
        ops in prop::collection::vec((0usize..8, 0u64..16, any::<bool>()), 1..200),
    ) {
        let mut dev = Rdram::new(DeviceConfig::default());
        let mut now = 0;
        for (bank, row, write) in ops {
            // Bring the bank to the right row.
            if let SenseAmps::Open { row: open } = dev.bank(bank).amps() {
                if open != row {
                    let cmd = Command::precharge(bank);
                    let t = dev.earliest(&cmd, now);
                    dev.issue_at(&cmd, t).unwrap();
                    now = t;
                }
            }
            if dev.bank(bank).amps() == SenseAmps::Closed {
                let cmd = Command::activate(bank, row);
                let t = dev.earliest(&cmd, now);
                dev.issue_at(&cmd, t).unwrap();
                now = t;
            }
            let cmd = if write { Command::write(bank, 0) } else { Command::read(bank, 0) };
            let t = dev.earliest(&cmd, now);
            let outcome = dev.issue_at(&cmd, t).unwrap();
            prop_assert!(outcome.data.is_some());
            now = t;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any kernel, stride, placement, policy, and FIFO depth produces
    /// bit-exact results through the full simulated system (`run_kernel`
    /// verifies against the scalar reference internally).
    #[test]
    fn random_configurations_are_bit_exact(
        kernel in prop::sample::select(Kernel::ALL.to_vec()),
        n in 8u64..80,
        stride in 1u64..6,
        depth in 2usize..48,
        memory in prop::sample::select(vec![
            MemorySystem::CacheLineInterleaved,
            MemorySystem::PageInterleaved,
        ]),
        aligned in any::<bool>(),
        bank_aware in any::<bool>(),
        speculative in any::<bool>(),
    ) {
        let mut cfg = SystemConfig::smc(memory, depth);
        if aligned {
            cfg = cfg.with_alignment(Alignment::Aligned);
        }
        if bank_aware {
            cfg = cfg.with_policy(Policy::BankAware);
        }
        if speculative {
            cfg = cfg.with_speculation();
        }
        let r = run_kernel(kernel, n, stride, &cfg).expect("fault-free run");
        prop_assert!(r.percent_peak() > 0.0);
        prop_assert!(r.percent_peak() <= 100.0 + 1e-9);
    }
}

mod fault_injection {
    use super::*;
    use faults::FaultPlan;
    use sim::SimError;
    use smc::SmcError;

    const CLI: MemorySystem = MemorySystem::CacheLineInterleaved;
    const PI: MemorySystem = MemorySystem::PageInterleaved;

    /// 128 seeded fault plans, each run through both access orderings —
    /// submitted as one grid to the campaign engine's parallel executor:
    /// every run either completes — in which case `run_kernel` has already
    /// verified the memory image bit-exactly against the scalar reference —
    /// or lands as a structured `Outcome::Error` record. Nothing panics,
    /// and nothing runs forever: the runner's internal cycle budget and
    /// the controllers' watchdogs convert runaway schedules into errors.
    #[test]
    fn seeded_fault_plans_never_panic_and_preserve_data() {
        let kernels = ["copy", "daxpy", "vaxpy", "hydro"];
        let mut points = Vec::new();
        for seed in 0..128u64 {
            let spec = FaultPlan::from_seed(seed).to_spec();
            let base = campaign::RunPoint {
                kernel: kernels[(seed % 4) as usize].to_string(),
                n: 48,
                faults: spec,
                fault_seed: seed,
                ..campaign::RunPoint::smoke("copy", 32)
            };
            points.push(base.clone());
            points.push(campaign::RunPoint {
                order: campaign::Order::Natural,
                memory: "pi".to_string(),
                ..base
            });
        }
        let store = campaign::run_points("fault-suite", &points, 4, &sim::sweep::run_point, None);
        assert_eq!(store.records.len(), 256, "seeded plans never collide");
        for record in &store.records {
            match &record.outcome {
                campaign::Outcome::Ok(stats) => {
                    assert!(stats.cycles > 0, "completed runs moved data");
                }
                campaign::Outcome::Error(e) => {
                    assert!(!e.is_empty(), "errors render context");
                }
            }
        }
        let (completed, errored) = (store.completed(), store.errored());
        assert_eq!(completed + errored, 256);
        assert!(
            completed >= 64,
            "bounded plans should often complete: {completed} ok, {errored} err"
        );
    }

    /// Fault injection is a pure function of (plan, seed): re-running the
    /// same configuration reproduces the same cycle count and counters.
    #[test]
    fn fault_runs_are_deterministic() {
        let plan = FaultPlan::parse("busy:2:128:24;nack:80:6;stall:256:16").unwrap();
        let cfg = SystemConfig::smc(PI, 16).with_faults(plan, 42);
        let a = run_kernel(Kernel::Daxpy, 96, 1, &cfg).expect("bounded plan completes");
        let b = run_kernel(Kernel::Daxpy, 96, 1, &cfg).expect("bounded plan completes");
        assert_eq!(a.cycles, b.cycles);
        let (sa, sb) = (a.msu_stats.unwrap(), b.msu_stats.unwrap());
        assert_eq!(sa.data_nacks, sb.data_nacks);
        assert_eq!(sa.injected_stall_cycles, sb.injected_stall_cycles);
    }

    /// Permanently busy banks starve both controllers; the watchdog turns
    /// that into a structured livelock report instead of an endless spin.
    #[test]
    fn total_starvation_is_reported_as_livelock() {
        let plan = FaultPlan::parse("busy:*:1:1").unwrap();
        for cfg in [
            SystemConfig::smc(CLI, 16).with_faults(plan.clone(), 1),
            SystemConfig::natural_order(CLI).with_faults(plan.clone(), 1),
        ] {
            match run_kernel(Kernel::Copy, 32, 1, &cfg) {
                Err(SimError::Controller(SmcError::Livelock(report))) => {
                    assert!(report.stalled_for >= smc::DEFAULT_WATCHDOG_CYCLES);
                    assert!(report.last_command.is_none(), "nothing ever issued");
                }
                other => panic!("expected livelock, got {other:?}"),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Seeded plans survive the spec syntax round trip, so any plan the
        /// property sweep exercises is reachable from the CLI's `--faults`.
        #[test]
        fn seeded_plans_round_trip_through_spec_syntax(seed in any::<u64>()) {
            let plan = FaultPlan::from_seed(seed);
            prop_assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Analytic bounds stay inside (0, 100] and preserve the paper's
    /// orderings for every workload shape.
    #[test]
    fn analytic_bounds_are_well_behaved(
        s in 2u64..9,
        ls in 16u64..4096,
        stride in 1u64..64,
        depth in 2u64..512,
    ) {
        use analytic::{cache::StreamSystem, smc::Workload, Organization};
        let sys = StreamSystem::default();
        let cli = sys.multi_stream(Organization::CacheLineInterleaved, s, ls, stride);
        let pi = sys.multi_stream(Organization::PageInterleaved, s, ls, stride);
        prop_assert!(cli > 0.0 && cli <= 100.0);
        prop_assert!(pi > 0.0 && pi <= 100.0);
        prop_assert!(pi > cli, "PI must beat CLI for streams: {pi} vs {cli}");

        let w = Workload { reads: s - 1, writes: 1, length: ls, stride };
        let a = sys.smc_asymptotic_bound(&w, depth);
        let a2 = sys.smc_asymptotic_bound(&w, depth * 2);
        prop_assert!(a > 0.0 && a <= 100.0);
        prop_assert!(a2 >= a, "deeper FIFOs cannot lower the asymptotic bound");
        for org in [Organization::CacheLineInterleaved, Organization::PageInterleaved] {
            let st = sys.smc_startup_bound(org, &w, depth);
            prop_assert!(st > 0.0 && st <= 100.0);
            let c = sys.smc_combined_bound(org, &w, depth);
            prop_assert!((c - st.min(a)).abs() < 1e-9);
        }
    }

    /// The strided single-stream bound is non-increasing in stride and flat
    /// beyond the cacheline for CLI (Figure 8's shape), for any part timing.
    #[test]
    fn single_stream_bound_shape(stride in 1u64..64) {
        use analytic::{cache::StreamSystem, Organization};
        let sys = StreamSystem::default();
        let here = sys.single_stream(Organization::CacheLineInterleaved, stride);
        let next = sys.single_stream(Organization::CacheLineInterleaved, stride + 1);
        prop_assert!(next <= here + 1e-9);
        if stride >= 4 {
            prop_assert!((here - next).abs() < 1e-9, "flat beyond the line");
        }
    }
}
