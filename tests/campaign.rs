//! End-to-end campaign-engine checks against the committed artifacts:
//! the smoke campaign in `campaigns/smoke.json` must reproduce its golden
//! store (`campaigns/smoke.golden.jsonl`) bit-for-bit at any worker
//! count, in any build profile — the same gate CI runs through
//! `smcsim campaign diff`.

use campaign::{diff_stores, expand, CampaignSpec, ResultsStore, Tolerance};

fn repo_file(name: &str) -> String {
    let path = format!("{}/campaigns/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn smoke_spec() -> CampaignSpec {
    CampaignSpec::from_json(&repo_file("smoke.json")).expect("committed spec parses")
}

fn golden() -> ResultsStore {
    ResultsStore::from_jsonl(&repo_file("smoke.golden.jsonl")).expect("committed golden parses")
}

/// The committed golden describes exactly the committed spec's grid.
#[test]
fn golden_covers_the_smoke_grid() {
    let spec = smoke_spec();
    let golden = golden();
    let points = expand(&spec);
    assert_eq!(golden.campaign, spec.name);
    assert_eq!(golden.records.len(), points.len());
    for (point, record) in points.iter().zip(&golden.records) {
        assert_eq!(record.run_id, point.run_id(), "{}", point.key());
    }
    assert_eq!(golden.errored(), 0, "the smoke campaign runs clean");
}

/// A fresh smoke run reproduces the golden bit-for-bit and passes the
/// same zero-tolerance gate CI applies.
#[test]
fn fresh_smoke_run_matches_the_committed_golden() {
    let store = sim::sweep::run_spec(&smoke_spec(), 2, None);
    let golden = golden();
    let report = diff_stores(&golden, &store, Tolerance::default());
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.compared, golden.records.len());
    assert_eq!(
        store.to_jsonl(),
        golden.to_jsonl(),
        "regenerated store is byte-identical to the committed golden"
    );
}

/// Running the same campaign twice — at different worker counts — yields
/// byte-identical stores: the artifact-regeneration determinism the
/// experiment figures rely on.
#[test]
fn repeated_runs_are_byte_stable_across_worker_counts() {
    let spec = smoke_spec();
    let first = sim::sweep::run_spec(&spec, 1, None).to_jsonl();
    let second = sim::sweep::run_spec(&spec, 1, None).to_jsonl();
    assert_eq!(first, second, "same worker count, same bytes");
    for workers in [2, 4, 16] {
        let par = sim::sweep::run_spec(&spec, workers, None).to_jsonl();
        assert_eq!(par, first, "workers={workers}");
    }
}

fn tenancy_spec() -> CampaignSpec {
    CampaignSpec::from_json(&repo_file("tenancy-smoke.json")).expect("committed spec parses")
}

fn tenancy_golden() -> ResultsStore {
    ResultsStore::from_jsonl(&repo_file("tenancy-smoke.golden.jsonl"))
        .expect("committed tenancy golden parses")
}

/// The committed multi-tenant golden describes exactly the committed
/// spec's grid, runs clean, and carries the serving-layer counters the
/// fairness gate rides on.
#[test]
fn tenancy_golden_covers_its_grid_with_serve_counters() {
    let spec = tenancy_spec();
    let golden = tenancy_golden();
    let points = expand(&spec);
    assert_eq!(golden.campaign, spec.name);
    assert_eq!(golden.records.len(), points.len());
    for (point, record) in points.iter().zip(&golden.records) {
        assert_eq!(record.run_id, point.run_id(), "{}", point.key());
        assert!(!point.tenants.is_empty(), "every point is multi-tenant");
        let campaign::Outcome::Ok(stats) = &record.outcome else {
            panic!("{} errored", point.key());
        };
        assert!(stats.serve_completed > 0, "{}", point.key());
        assert_eq!(stats.serve_budget_violations, 0, "{}", point.key());
        assert!(stats.serve_fairness_milli > 0, "{}", point.key());
    }
}

/// A fresh multi-tenant run reproduces the committed golden bit-for-bit
/// at any worker count — per-tenant deadline-miss and fairness counters
/// are regression-gated, not advisory.
#[test]
fn fresh_tenancy_run_matches_the_committed_golden() {
    let golden = tenancy_golden();
    let store = sim::sweep::run_spec(&tenancy_spec(), 2, None);
    let report = diff_stores(&golden, &store, Tolerance::default());
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(
        store.to_jsonl(),
        golden.to_jsonl(),
        "regenerated tenancy store is byte-identical to the committed golden"
    );
}

/// With tenancy disabled (an empty `tenants` field) the campaign path is
/// inert: keys, run IDs, and record bytes never mention the tenancy layer,
/// so every pre-tenancy golden in the repository still matches.
#[test]
fn single_tenant_path_is_inert() {
    let spec = smoke_spec();
    let store = sim::sweep::run_spec(&spec, 2, None);
    for record in &store.records {
        assert!(record.point.tenants.is_empty());
        assert_eq!(record.point.budget_permille, 0);
        let line = record.to_json_line();
        assert!(!line.contains("tenants"), "{line}");
        assert!(!line.contains("serve_"), "{line}");
        assert!(!record.point.key().contains("tenants"), "keys unchanged");
    }
    // And the committed single-tenant golden never mentions tenancy.
    let golden_text = repo_file("smoke.golden.jsonl");
    assert!(!golden_text.contains("tenants"));
    assert!(!golden_text.contains("serve_"));
}

/// With one channel and one device per channel the topology axes are
/// inert: keys, run IDs, and record bytes never mention the memory-system
/// topology, so every pre-memsys golden in the repository still matches
/// bit-for-bit.
#[test]
fn single_channel_path_is_inert() {
    let spec = smoke_spec();
    let store = sim::sweep::run_spec(&spec, 2, None);
    for record in &store.records {
        assert_eq!(record.point.channels, 1);
        assert_eq!(record.point.devices_per_channel, 1);
        assert_eq!(record.point.placement, "interleaved");
        let line = record.to_json_line();
        assert!(!line.contains("channels"), "{line}");
        assert!(!line.contains("placement"), "{line}");
        assert!(!record.point.key().contains("channels"), "keys unchanged");
    }
    // And neither committed golden mentions the topology at all.
    for name in ["smoke.golden.jsonl", "tenancy-smoke.golden.jsonl"] {
        let text = repo_file(name);
        assert!(!text.contains("channels"), "{name}");
        assert!(!text.contains("placement"), "{name}");
    }
}

/// The multi-channel smoke campaign reproduces its committed golden
/// bit-for-bit at the CI worker count, and its multi-channel records
/// carry the topology fields.
#[test]
fn fresh_multichannel_run_matches_the_committed_golden() {
    let spec = CampaignSpec::from_json(&repo_file("multichannel-smoke.json"))
        .expect("committed spec parses");
    let golden = ResultsStore::from_jsonl(&repo_file("multichannel-smoke.golden.jsonl"))
        .expect("committed multichannel golden parses");
    let store = sim::sweep::run_spec(&spec, 2, None);
    let report = diff_stores(&golden, &store, Tolerance::default());
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(
        store.to_jsonl(),
        golden.to_jsonl(),
        "regenerated multichannel store is byte-identical to the committed golden"
    );
    assert_eq!(golden.errored(), 0, "the multichannel campaign runs clean");
    assert!(
        golden
            .records
            .iter()
            .any(|r| r.point.channels > 1 && r.to_json_line().contains("\"channels\":")),
        "multi-channel records carry the topology fields"
    );
}

/// With an empty chaos plan and a zero retry budget the chaos axes are
/// inert: keys, run IDs, and record bytes never mention the fault layer,
/// so every pre-chaos golden in the repository still matches bit-for-bit.
#[test]
fn chaos_free_path_is_inert() {
    for spec_name in [
        "smoke.json",
        "tenancy-smoke.json",
        "multichannel-smoke.json",
    ] {
        let spec = CampaignSpec::from_json(&repo_file(spec_name)).expect("committed spec parses");
        let store = sim::sweep::run_spec(&spec, 2, None);
        for record in &store.records {
            assert!(record.point.chaos.is_empty(), "{spec_name}");
            assert_eq!(record.point.retry_budget, 0, "{spec_name}");
            let line = record.to_json_line();
            assert!(!line.contains("chaos"), "{spec_name}: {line}");
            assert!(!line.contains("retry_budget"), "{spec_name}: {line}");
            assert!(!record.point.key().contains("chaos"), "keys unchanged");
        }
    }
    // And no committed pre-chaos golden mentions the fault layer at all.
    for name in [
        "smoke.golden.jsonl",
        "tenancy-smoke.golden.jsonl",
        "multichannel-smoke.golden.jsonl",
    ] {
        let text = repo_file(name);
        assert!(!text.contains("chaos"), "{name}");
        assert!(!text.contains("retry_budget"), "{name}");
    }
}

/// The chaos smoke campaign reproduces its committed golden bit-for-bit
/// at the CI worker count; chaotic records carry the degraded-mode
/// accounting and the measured MTTR reconciles exactly against the
/// injected 600-cycle outage window.
#[test]
fn fresh_chaos_run_matches_the_committed_golden() {
    let spec =
        CampaignSpec::from_json(&repo_file("chaos-smoke.json")).expect("committed spec parses");
    let golden = ResultsStore::from_jsonl(&repo_file("chaos-smoke.golden.jsonl"))
        .expect("committed chaos golden parses");
    let store = sim::sweep::run_spec(&spec, 2, None);
    let report = diff_stores(&golden, &store, Tolerance::default());
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(
        store.to_jsonl(),
        golden.to_jsonl(),
        "regenerated chaos store is byte-identical to the committed golden"
    );
    assert_eq!(golden.errored(), 0, "the chaos campaign runs clean");
    let mut chaotic = 0;
    for record in &golden.records {
        let campaign::Outcome::Ok(stats) = &record.outcome else {
            panic!("{} errored", record.point.key());
        };
        if record.point.chaos.is_empty() {
            assert_eq!(stats.chaos_mttr_cycles, 0, "{}", record.point.key());
            continue;
        }
        chaotic += 1;
        assert!(
            record.to_json_line().contains("\"chaos\":"),
            "chaotic records carry the plan"
        );
        // MTTR reconciles exactly: the spec injects one 600-cycle outage
        // window per plan, so measured repair time is 600 per observation.
        assert_eq!(
            stats.chaos_mttr_cycles,
            stats.chaos_outages_observed * 600,
            "{}",
            record.point.key()
        );
    }
    assert!(chaotic > 0, "the spec exercises chaotic points");
}

/// The diff gate actually fires on a cycle regression in this store.
#[test]
fn gate_catches_an_injected_regression() {
    let golden = golden();
    let mut drifted = golden.clone();
    if let campaign::Outcome::Ok(stats) = &mut drifted.records[0].outcome {
        stats.cycles += 10;
    } else {
        panic!("first smoke record is ok");
    }
    let report = diff_stores(&golden, &drifted, Tolerance::default());
    assert!(!report.is_clean());
    assert_eq!(report.regressions.len(), 1);
    assert_eq!(report.regressions[0].run_id, golden.records[0].run_id);
}
