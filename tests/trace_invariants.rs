//! Protocol invariants checked from recorded packet traces.
//!
//! These tests re-verify, from the *outside*, the timing rules the device
//! enforces internally: bus exclusivity, ACT spacing, activate-to-column
//! delay, and the write-to-read turnaround — across both controllers and
//! both memory organizations.

use std::collections::HashMap;

use kernels::Kernel;
use rdram::trace::{Trace, TraceKind, TraceUnit};
use rdram::{Dir, Timing};
use sim::{run_kernel, MemorySystem, SystemConfig};

fn traced(kernel: Kernel, n: u64, cfg: &SystemConfig) -> Trace {
    let cfg = cfg.clone().with_trace();
    run_kernel(kernel, n, 1, &cfg)
        .expect("fault-free run")
        .trace
        .expect("trace requested")
}

fn check_invariants(trace: &Trace, t: &Timing) {
    let mut lane_end: HashMap<&'static str, u64> = HashMap::new();
    let mut last_act_any: Option<u64> = None;
    let mut last_act_bank: HashMap<usize, u64> = HashMap::new();
    let mut col_ok_bank: HashMap<usize, u64> = HashMap::new();
    let mut last_write_data_end: Option<u64> = None;

    for e in trace.events() {
        let lane = match e.unit {
            TraceUnit::RowBus => "row",
            TraceUnit::ColBus => "col",
            TraceUnit::DataBus => "data",
        };
        // Auto-precharge events are recorded for visualization only; they
        // occupy no bus.
        if !matches!(e.kind, TraceKind::AutoPrecharge { .. }) {
            let end = lane_end.entry(lane).or_insert(0);
            assert!(
                e.interval.start >= *end,
                "{lane} bus overlap at cycle {}: {e:?}",
                e.interval.start
            );
            *end = e.interval.end;
        }
        match e.kind {
            TraceKind::Activate { bank, .. } => {
                if let Some(prev) = last_act_any {
                    assert!(
                        e.interval.start >= prev + t.t_rr,
                        "tRR violated: ACTs at {prev} and {}",
                        e.interval.start
                    );
                }
                if let Some(prev) = last_act_bank.get(&bank) {
                    assert!(
                        e.interval.start >= prev + t.t_rc,
                        "tRC violated on bank {bank}: ACTs at {prev} and {}",
                        e.interval.start
                    );
                }
                last_act_any = Some(e.interval.start);
                last_act_bank.insert(bank, e.interval.start);
                col_ok_bank.insert(bank, e.interval.start + t.t_rcd + 1);
            }
            TraceKind::ColRead { bank } | TraceKind::ColWrite { bank } => {
                let ok = col_ok_bank.get(&bank).copied().unwrap_or(u64::MAX);
                assert!(
                    e.interval.start >= ok,
                    "COL to bank {bank} at {} before ACT+tRCD+1 ({ok})",
                    e.interval.start
                );
            }
            TraceKind::Data { dir, .. } => {
                if dir == Dir::Read {
                    if let Some(wend) = last_write_data_end {
                        assert!(
                            e.interval.start >= wend + t.t_rw || e.interval.start + t.t_rw <= wend,
                            "turnaround violated: write data ended {wend}, read \
                             data starts {}",
                            e.interval.start
                        );
                    }
                } else {
                    last_write_data_end = Some(e.interval.end);
                }
            }
            TraceKind::Precharge { .. } | TraceKind::AutoPrecharge { .. } => {}
        }
    }
}

#[test]
fn smc_traces_respect_the_protocol() {
    let t = Timing::default();
    for memory in [
        MemorySystem::CacheLineInterleaved,
        MemorySystem::PageInterleaved,
    ] {
        for kernel in [Kernel::Copy, Kernel::Daxpy, Kernel::Vaxpy, Kernel::Swap] {
            let trace = traced(kernel, 128, &SystemConfig::smc(memory, 32));
            assert!(trace.len() > 100, "{kernel} {memory:?} trace too small");
            check_invariants(&trace, &t);
        }
    }
}

#[test]
fn natural_order_traces_respect_the_protocol() {
    let t = Timing::default();
    for memory in [
        MemorySystem::CacheLineInterleaved,
        MemorySystem::PageInterleaved,
    ] {
        for kernel in [Kernel::Copy, Kernel::Hydro] {
            let trace = traced(kernel, 128, &SystemConfig::natural_order(memory));
            check_invariants(&trace, &t);
        }
    }
}

mod random {
    use super::*;
    use proptest::prelude::*;
    use sim::Alignment;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The protocol rules hold for arbitrary kernels, organizations,
        /// FIFO depths, strides, placements, and MSU features.
        #[test]
        fn random_configs_respect_the_protocol(
            kernel in prop::sample::select(Kernel::ALL.to_vec()),
            memory in prop::sample::select(vec![
                MemorySystem::CacheLineInterleaved,
                MemorySystem::PageInterleaved,
            ]),
            depth in 2usize..40,
            stride in 1u64..5,
            aligned in any::<bool>(),
            speculative in any::<bool>(),
        ) {
            let mut cfg = SystemConfig::smc(memory, depth).with_trace();
            if aligned {
                cfg = cfg.with_alignment(Alignment::Aligned);
            }
            if speculative {
                cfg = cfg.with_speculation();
            }
            let trace = sim::run_kernel(kernel, 64, stride, &cfg).expect("fault-free run")
                .trace
                .expect("trace requested");
            check_invariants(&trace, &Timing::default());
        }
    }
}

#[test]
fn data_bus_moves_exactly_the_stream_packets() {
    // Unit-stride daxpy on 256 elements: 3 streams x 128 packets.
    let trace = traced(
        Kernel::Daxpy,
        256,
        &SystemConfig::smc(MemorySystem::PageInterleaved, 64),
    );
    let data_packets = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Data { .. }))
        .count();
    assert_eq!(data_packets, 3 * 128);
}
