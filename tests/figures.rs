//! The experiment registry: every figure renders, serializes, and exports
//! consistently through `sim::experiments`.

use sim::experiments;

#[test]
fn every_experiment_renders_nonempty_text() {
    for name in experiments::ALL.iter().chain(std::iter::once(&"headline")) {
        let text = experiments::render(name);
        assert!(
            text.len() > 100,
            "{name} rendered only {} bytes",
            text.len()
        );
    }
}

#[test]
fn structured_experiments_serialize_to_json() {
    for name in ["fig7", "fig8", "fig9", "extra", "headline"] {
        let json = experiments::json(name).unwrap_or_else(|| panic!("{name} has JSON"));
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(v.is_object(), "{name} must serialize to an object");
    }
    for name in ["fig1", "fig2", "fig4", "fig5", "fig6"] {
        assert!(experiments::json(name).is_none(), "{name} is text-only");
    }
}

#[test]
fn csv_experiments_have_headers_and_rows() {
    for name in ["fig7", "fig8", "fig9"] {
        let csv = experiments::csv(name).unwrap_or_else(|| panic!("{name} has CSV"));
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines.len() > 5, "{name} CSV too small");
        let cols = lines[0].split(',').count();
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.split(',').count(), cols, "{name} row {i} ragged");
        }
    }
    assert!(experiments::csv("headline").is_none());
}

#[test]
fn svg_experiments_produce_well_formed_documents() {
    let fig7 = experiments::svgs("fig7");
    assert_eq!(fig7.len(), 16, "one SVG per Figure 7 panel");
    for (file, svg) in fig7.iter().chain(&experiments::svgs("fig8")) {
        assert!(file.ends_with(".svg"));
        assert!(svg.starts_with("<svg"), "{file}");
        assert!(svg.trim_end().ends_with("</svg>"), "{file}");
        assert!(svg.contains("polyline"), "{file} has no series");
    }
    assert!(experiments::svgs("headline").is_empty());
}

#[test]
#[should_panic(expected = "unknown experiment")]
fn unknown_experiment_names_panic() {
    let _ = experiments::render("fig99");
}
