//! Multi-tenant serving-layer property suite.
//!
//! 128 seeded scenarios — tenant mixes crossed with synthetic fault
//! storms — drive the serving loop through overload, throttling, and
//! shedding, checking the three invariants the tenancy layer guarantees:
//!
//! 1. **No livelock**: every run terminates with a report (the serve
//!    clock never hits its hard budget), and per-tenant stalls surface as
//!    structured starvation reports, not hangs.
//! 2. **No budget violations**: the regulator never grants a dispatch
//!    while the tenant's token bucket is non-positive.
//! 3. **Monotone shed ordering**: a latency-sensitive request is never
//!    shed before the first bandwidth-hungry request was shed — the
//!    degradation ladder's class contract, observed end to end.
//!
//! The seeded sweep uses a deterministic synthetic executor so 128
//! scenarios finish in milliseconds; a final soak drives 64 tenants
//! through the *real* simulator under a seeded fault storm, the same
//! configuration the CI overload-soak step runs from the CLI.

use faults::FaultPlan;
use sim::{MemorySystem, SystemConfig};
use tenancy::{
    serve, DegradeLevel, Executor, Request, RetryPolicy, ServeReport, ServiceReport, TenantMix,
    TenantSpec,
};

/// splitmix64: the repo-standard cheap deterministic hash for tests.
fn mix64(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Deterministic stand-in for the simulator: service time, bank usage,
/// fault events, and occasional hard failures are all pure functions of
/// (suite seed, tenant, sequence number). Stormy seeds inflate service
/// times well past the mix's arrival cadence, forcing queues to fill and
/// the ladder to climb.
struct SynthExecutor {
    seed: u64,
    /// Service-time multiplier in permille of the nominal estimate;
    /// >1000 models an overloaded or fault-degraded memory system.
    pressure_permille: u64,
    banks: usize,
}

impl Executor for SynthExecutor {
    fn execute(&self, tenant: &TenantSpec, req: &Request) -> Result<ServiceReport, String> {
        let h =
            mix64(self.seed ^ (req.tenant as u64).wrapping_mul(0x517c_c1b7_2722_0a95) ^ req.seq);
        if h.is_multiple_of(41) {
            return Err(format!(
                "injected executor failure for {}#{}",
                tenant.name, req.seq
            ));
        }
        let nominal = 4 * tenant.n.max(1) + 64;
        let cycles = (nominal * self.pressure_permille / 1000).max(1) + h % 97;
        let packets = tenant.n / 2 + 1;
        Ok(ServiceReport {
            cycles,
            useful_words: 2 * tenant.n,
            bank_data_cycles: vec![((h as usize) % self.banks.max(1), packets)],
            fault_events: if h.is_multiple_of(5) { 1 + h % 7 } else { 0 },
        })
    }
}

/// Build a seeded tenant mix through the same `+`-grammar the CLI and the
/// campaign axes use, so every property scenario is reachable from both.
fn mix_for(seed: u64) -> TenantMix {
    let kernels = ["copy", "daxpy", "vaxpy", "hydro"];
    let h = mix64(seed);
    let ls = 1 + h % 4;
    let bh = 1 + (h >> 8) % 8;
    let ls_kernel = kernels[(h >> 16) as usize % 4];
    let bh_kernel = kernels[(h >> 24) as usize % 4];
    let ls_n = 32 << ((h >> 32) % 3);
    let bh_n = 64 << ((h >> 40) % 3);
    let spec = format!("ls:{ls}:{ls_kernel}:{ls_n}+bh:{bh}:{bh_kernel}:{bh_n}");
    TenantMix::parse(&spec).expect("generated mix parses")
}

/// The invariants every scenario must satisfy, stormy or calm.
fn check_invariants(seed: u64, report: &ServeReport) {
    report
        .check_conservation()
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    assert_eq!(
        report.budget_violations, 0,
        "seed {seed}: regulator granted dispatches on empty buckets"
    );
    // Monotone shed ordering: LS shed implies an earlier-or-equal BH shed.
    if let Some(ls_at) = report.first_ls_shed {
        let bh_at = report
            .first_bh_shed
            .unwrap_or_else(|| panic!("seed {seed}: LS shed at {ls_at} with no BH shed at all"));
        assert!(
            bh_at <= ls_at,
            "seed {seed}: LS shed at {ls_at} before BH at {bh_at}"
        );
    }
    // Starvation reports are structured and internally consistent.
    for s in &report.starvation {
        assert!(s.tenant < report.tenants.len(), "seed {seed}");
        assert_eq!(report.tenants[s.tenant].name, s.name, "seed {seed}");
        assert!(s.waited > 0 && s.now >= s.waited, "seed {seed}");
    }
    // Ladder transitions never skip the class contract: any recorded
    // critical level implies the run shed BH work no later than LS work.
    if report.peak_level >= DegradeLevel::Shed {
        assert!(
            report.first_bh_shed.is_some() || report.first_ls_shed.is_none(),
            "seed {seed}: peaked at {:?} without shedding BH first",
            report.peak_level
        );
    }
}

/// 128 seeded tenant-mix × fault-storm scenarios through the serving
/// loop: zero livelocks, zero budget violations, monotone shed ordering.
#[test]
fn seeded_mixes_and_storms_hold_the_serving_invariants() {
    let banks = 16;
    let mut stormy_runs = 0u32;
    let mut runs_that_shed = 0u32;
    let mut starvation_reports = 0usize;
    for seed in 0..128u64 {
        let mut mix = mix_for(seed);
        // Odd seeds are storms: service times 3x-10x nominal and
        // sustained arrival streams, so queues fill, deadlines slip, and
        // the ladder climbs while requests are still arriving.
        let pressure = if seed % 2 == 1 {
            stormy_runs += 1;
            for t in &mut mix.tenants {
                t.requests *= 8;
            }
            3000 + mix64(seed ^ 0xdead) % 7000
        } else {
            700 + mix64(seed ^ 0xbeef) % 600
        };
        let exec = SynthExecutor {
            seed,
            pressure_permille: pressure,
            banks,
        };
        let mut cfg = sim::serve::serve_config_for(banks, 500, 1);
        cfg.policy = "regulated".to_string();
        // Tight forward-progress deadline so storm-length waits trip the
        // watchdog (the production default of 1M cycles is sized for real
        // kernel runs, not these compressed scenarios).
        cfg.progress_deadline = 8_192;
        let report = serve(&mix, &cfg, &exec)
            .unwrap_or_else(|e| panic!("seed {seed} failed to terminate: {e}"));
        check_invariants(seed, &report);
        let (submitted, ..) = report.totals();
        assert!(submitted > 0, "seed {seed}: mixes always submit work");
        if report.first_bh_shed.is_some() {
            runs_that_shed += 1;
        }
        starvation_reports += report.starvation.len();
    }
    // The sweep must actually exercise the ladder, not pass vacuously.
    assert_eq!(stormy_runs, 64);
    assert!(
        runs_that_shed >= 16,
        "storms should force shedding: only {runs_that_shed}/128 runs shed"
    );
    assert!(
        starvation_reports > 0,
        "storms should trip the per-tenant forward-progress watchdog"
    );
}

/// Identical seeds reproduce identical reports — the serving loop has no
/// hidden nondeterminism for the campaign goldens to trip over.
#[test]
fn serving_runs_are_deterministic() {
    for seed in [3u64, 17, 99] {
        let mix = mix_for(seed);
        let exec = SynthExecutor {
            seed,
            pressure_permille: 4000,
            banks: 16,
        };
        let mut cfg = sim::serve::serve_config_for(16, 500, 1);
        cfg.policy = "regulated".to_string();
        let a = serve(&mix, &cfg, &exec).expect("terminates");
        let b = serve(&mix, &cfg, &exec).expect("terminates");
        assert_eq!(a, b, "seed {seed}");
    }
}

/// Every arbitration policy holds the same invariants under the same
/// storm — the class contract lives in the ladder and regulator, not in
/// any single policy's behaviour.
#[test]
fn all_policies_hold_the_invariants_under_storm() {
    for policy in ["fcfs", "rr", "bank-aware", "regulated"] {
        for seed in 0..16u64 {
            let mix = mix_for(seed);
            let exec = SynthExecutor {
                seed,
                pressure_permille: 5000,
                banks: 16,
            };
            let mut cfg = sim::serve::serve_config_for(16, 400, 1);
            cfg.policy = policy.to_string();
            let report =
                serve(&mix, &cfg, &exec).unwrap_or_else(|e| panic!("{policy}/seed {seed}: {e}"));
            check_invariants(seed, &report);
        }
    }
}

/// A serving configuration that can actually reject work: a one-slot
/// queue with fill-based shedding disabled, so overload surfaces as
/// `Rejected { retry_after }` instead of ladder sheds, engaging the
/// closed loop.
fn closed_loop_cfg(banks: usize, budget: u32, seed: u64) -> tenancy::ServeConfig {
    let mut cfg = sim::serve::serve_config_for(banks, 500, 1);
    cfg.policy = "regulated".to_string();
    cfg.queue_capacity = 1;
    cfg.ladder.shed_fill_permille = 1001;
    cfg.ladder.critical_fill_permille = 1002;
    cfg.retry = RetryPolicy::with_budget(budget, seed);
    cfg
}

/// Satellite property: `retry_after` is honored end to end. Across a
/// seeded sweep of overloaded closed-loop runs, no client ever resubmits
/// earlier than the server's hint, every resubmission lands at exactly
/// `rejected_at + max(hint, backoff)`, and no audit exceeds the retry
/// budget.
#[test]
fn no_client_resubmits_before_its_retry_after_hint() {
    let banks = 16;
    let mut audited = 0u64;
    for seed in 0..32u64 {
        let mut mix = mix_for(seed);
        for t in &mut mix.tenants {
            t.requests *= 4;
        }
        let exec = SynthExecutor {
            seed,
            pressure_permille: 3000 + mix64(seed ^ 0xfeed) % 5000,
            banks,
        };
        let cfg = closed_loop_cfg(banks, 3, seed);
        let report = serve(&mix, &cfg, &exec)
            .unwrap_or_else(|e| panic!("seed {seed} failed to terminate: {e}"));
        check_invariants(seed, &report);
        let retries: u64 = report.tenants.iter().map(|t| t.retries).sum();
        assert_eq!(report.retry_log.len() as u64, retries, "seed {seed}");
        for a in &report.retry_log {
            assert!(
                a.resubmit_at >= a.rejected_at + a.hint,
                "seed {seed}: client beat its retry_after hint: {a:?}"
            );
            assert_eq!(
                a.resubmit_at,
                a.rejected_at + a.hint.max(a.backoff),
                "seed {seed}: {a:?}"
            );
            assert!(a.attempt < cfg.retry.max_retries, "seed {seed}: {a:?}");
        }
        audited += retries;
    }
    assert!(
        audited > 0,
        "the sweep must engage the closed loop, not pass vacuously"
    );
}

/// Satellite soak: 128 seeded closed-loop scenarios with retry budgets
/// on. Every run terminates (zero livelocks), holds the serving
/// invariants (zero budget violations, monotone shed ordering), keeps
/// retry amplification bounded by the configured budget, and replays
/// bit-identically from the same seed.
#[test]
fn closed_loop_soak_is_livelock_free_with_bounded_amplification() {
    let banks = 16;
    let mut total_retries = 0u64;
    let mut exhausted_runs = 0u32;
    for seed in 0..128u64 {
        let mut mix = mix_for(seed);
        // Odd seeds are storms, as in the open-loop sweep; even seeds run
        // merely overloaded so some retries eventually succeed.
        let pressure = if seed % 2 == 1 {
            for t in &mut mix.tenants {
                t.requests *= 8;
            }
            3000 + mix64(seed ^ 0xdead) % 7000
        } else {
            1500 + mix64(seed ^ 0xbeef) % 1500
        };
        let budget = 1 + u32::try_from(mix64(seed ^ 0xcafe) % 3).unwrap();
        let exec = SynthExecutor {
            seed,
            pressure_permille: pressure,
            banks,
        };
        let mut cfg = closed_loop_cfg(banks, budget, seed);
        cfg.progress_deadline = 8_192;
        let report =
            serve(&mix, &cfg, &exec).unwrap_or_else(|e| panic!("seed {seed} livelocked: {e}"));
        check_invariants(seed, &report);
        // Retry amplification is bounded by the budget: every original
        // request resubmits at most `budget` times.
        let (submitted, ..) = report.totals();
        let original = mix.total_requests();
        assert!(
            submitted <= original * (1 + u64::from(budget)),
            "seed {seed}: submitted {submitted} exceeds the amplification \
             bound for {original} originals at budget {budget}"
        );
        let retries: u64 = report.tenants.iter().map(|t| t.retries).sum();
        assert!(
            retries <= original * u64::from(budget),
            "seed {seed}: {retries} retries exceed the budget bound"
        );
        total_retries += retries;
        if report.tenants.iter().any(|t| t.retry_exhausted > 0) {
            exhausted_runs += 1;
        }
        // Same seed, same bytes: the closed loop adds no nondeterminism.
        if seed % 32 == 0 {
            assert_eq!(
                serve(&mix, &cfg, &exec).expect("replays"),
                report,
                "seed {seed}"
            );
        }
    }
    assert!(
        total_retries > 0,
        "the soak must drive the closed loop, not pass vacuously"
    );
    assert!(
        exhausted_runs > 0,
        "storms should exhaust at least one tenant's retry budget"
    );
}

/// Overload soak against the *real* simulator: 64 tenants (16 LS + 48
/// BH) under a seeded NACK + bank-busy fault storm — the acceptance
/// configuration CI also drives through `smcsim serve`. Zero livelocks
/// (the run terminates with a report), zero budget violations, and the
/// shed ordering holds with real service times.
#[test]
fn sixty_four_tenant_soak_survives_a_fault_storm() {
    let mix = TenantMix::parse("ls:16:daxpy:64+bh:48:copy:128").expect("soak mix parses");
    assert_eq!(mix.tenants.len(), 64);
    let plan = FaultPlan::parse("nack:100:4;busy:*:900:40").expect("storm spec parses");
    let base = SystemConfig::smc(MemorySystem::CacheLineInterleaved, 64).with_faults(plan, 11);
    let banks = 16;
    let mut cfg = sim::serve::serve_config_for(banks, 400, base.device.timing.t_pack);
    cfg.policy = "regulated".to_string();
    let report = sim::serve::run_serve(&mix, &cfg, &base).expect("soak terminates");
    check_invariants(11, &report);
    let (submitted, completed, ..) = report.totals();
    assert!(submitted >= 64, "every tenant submits at least once");
    assert!(completed > 0, "the system keeps serving under the storm");
    assert!(
        report.fairness_milli() >= 500,
        "regulated arbitration keeps Jain fairness above 0.5: {}",
        report.fairness_milli()
    );
}
