//! # rambus — streams on a Direct Rambus memory
//!
//! A full reproduction of Hong, McKee, Salinas, Klenke, Aylor & Wulf,
//! *"Access Order and Effective Bandwidth for Streams on a Direct Rambus
//! Memory"* (HPCA 1999), as a workspace of composable crates re-exported
//! here:
//!
//! * [`rdram`] — cycle-accurate Direct RDRAM device model (banks, packet
//!   buses, CLI/PI interleaving, page policies, packet traces).
//! * [`smc`] — the paper's contribution: a Stream Memory Controller with
//!   per-stream FIFOs and a dynamically reordering Memory Scheduling Unit.
//! * [`baseline`] — the comparator: a conventional controller issuing
//!   cacheline accesses in the computation's natural order.
//! * [`analytic`] — closed-form bandwidth bounds (the paper's Section 5).
//! * [`kernels`] — the benchmark kernels (copy, daxpy, hydro, vaxpy, …) with
//!   reference semantics.
//! * [`sim`] — the cycle-based simulation engine, experiment harness, and
//!   report generation for every figure and table in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use sim::{MemorySystem, SystemConfig};
//! use kernels::Kernel;
//!
//! // Daxpy over 1024-element vectors through the SMC on a cacheline-
//! // interleaved Direct RDRAM, with 64-deep FIFOs.
//! let cfg = SystemConfig::smc(MemorySystem::CacheLineInterleaved, 64);
//! let result = sim::run_kernel(Kernel::Daxpy, 1024, 1, &cfg).expect("fault-free run");
//! assert!(result.percent_peak() > 80.0);
//!
//! // The same computation with natural-order cacheline accesses is far
//! // slower.
//! let naive = SystemConfig::natural_order(MemorySystem::CacheLineInterleaved);
//! let base = sim::run_kernel(Kernel::Daxpy, 1024, 1, &naive).expect("fault-free run");
//! assert!(result.percent_peak() > 1.15 * base.percent_peak());
//! ```

#![forbid(unsafe_code)]

pub use analytic;
pub use baseline;
pub use fpm;
pub use kernels;
pub use rdram;
pub use sim;
pub use smc;
