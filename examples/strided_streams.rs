//! Non-unit strides: where dynamic access ordering stops paying off.
//!
//! Reproduces the shape of the paper's Figures 8 and 9 for a configurable
//! kernel: as stride grows, each 128-bit DATA packet carries only one useful
//! element (attainable bandwidth halves), CLI loses bank parallelism at
//! stride multiples of 16 words, and for PI at large strides the naive
//! cacheline controller catches up with the SMC.
//!
//! ```text
//! cargo run --release --example strided_streams -- [kernel]
//! ```

use std::env;

use kernels::Kernel;
use sim::report::{pct, Table};
use sim::{run_kernel, MemorySystem, SystemConfig};

fn main() {
    let kernel = env::args()
        .nth(1)
        .map(|s| {
            Kernel::ALL
                .into_iter()
                .find(|k| k.name() == s)
                .unwrap_or_else(|| panic!("unknown kernel {s:?}"))
        })
        .unwrap_or(Kernel::Vaxpy);
    let n = 1024;
    let depth = 128;
    println!(
        "{kernel}, {n} elements per stream, {depth}-deep FIFOs.\n\
         Values are percent of ATTAINABLE bandwidth (50% of peak for\n\
         non-unit strides — half of every 16-byte packet is dead data):\n"
    );
    let mut table = Table::new(vec![
        "stride".into(),
        "CLI SMC %".into(),
        "PI SMC %".into(),
        "CLI cache bound %".into(),
        "PI cache bound %".into(),
    ]);
    for stride in [1u64, 2, 4, 8, 12, 16, 24, 32, 40, 48, 56, 64] {
        let smc = |memory: MemorySystem| {
            run_kernel(kernel, n, stride, &SystemConfig::smc(memory, depth))
                .expect("fault-free run")
                .percent_attainable()
        };
        let cache = |memory: MemorySystem| {
            let sys = SystemConfig::natural_order(memory).stream_system();
            let peak = sys.multi_stream(memory.organization(), kernel.total_streams(), n, stride);
            if stride == 1 {
                peak
            } else {
                2.0 * peak
            }
        };
        table.row(vec![
            stride.to_string(),
            pct(smc(MemorySystem::CacheLineInterleaved)),
            pct(smc(MemorySystem::PageInterleaved)),
            pct(cache(MemorySystem::CacheLineInterleaved)),
            pct(cache(MemorySystem::PageInterleaved)),
        ]);
    }
    println!("{}", table.render());
}
