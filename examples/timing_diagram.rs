//! Render packet-level timing diagrams of the three-stream loop
//! `{rd x[i]; rd y[i]; st z[i]}` — the paper's Figures 5 and 6 — plus the
//! same loop through the SMC for contrast.
//!
//! ```text
//! cargo run --release --example timing_diagram
//! ```

use kernels::Kernel;
use rdram::trace;
use sim::{run_kernel, MemorySystem, SystemConfig};

fn main() {
    println!("{}", sim::experiments::render("fig5"));
    println!("{}", sim::experiments::render("fig6"));

    // The same stream population through the SMC: triad has the identical
    // 2-read / 1-write signature. Note the bus staying saturated.
    let cfg = SystemConfig::smc(MemorySystem::CacheLineInterleaved, 32).with_trace();
    let result = run_kernel(Kernel::Triad, 16, 1, &cfg).expect("fault-free run");
    let t = result.trace.expect("trace enabled");
    println!(
        "Same loop through the SMC (CLI, 32-deep FIFOs): accesses reordered\n\
         per stream, DATA bus saturated\n\n{}",
        trace::render(&t, 0, 160.min(t.end_cycle()))
    );
}
