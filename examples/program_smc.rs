//! Drive the SMC the way compiled code would: store stream parameters into
//! its memory-mapped register window, launch, then dereference the FIFO
//! head registers in the loop — here for a daxpy over 512 elements.
//!
//! ```text
//! cargo run --release --example program_smc
//! ```

use memsys::{MemorySystem, SystemMap};
use rdram::{AddressMap, DeviceConfig, Interleave, MemoryImage};
use smc::regs::{MmioWindow, MODE_GO, MODE_WRITE};
use smc::{MsuConfig, SmcController};

fn main() {
    let n = 512u64;
    let a = 3.0f64;

    // Memory image: x at 0x0000, y at 16 KB (different banks under PI).
    let (x_base, y_base) = (0x0000u64, 16 * 1024 + 1024);
    let mut mem = MemoryImage::new();
    for i in 0..n {
        mem.write_f64(x_base + i * 8, i as f64);
        mem.write_f64(y_base + i * 8, 0.5 * i as f64);
    }

    // "Compiler-generated" programming sequence: three streams for
    // y[i] = a*x[i] + y[i].
    let mut mmio = MmioWindow::new(0xF000_0000);
    let program: [(usize, u64, u64); 3] = [
        (0, x_base, 0),          // slot 0: read x
        (1, y_base, 0),          // slot 1: read y
        (2, y_base, MODE_WRITE), // slot 2: write y
    ];
    for (slot, base, mode_bits) in program {
        mmio.write(mmio.base_reg(slot), base)
            .expect("register write");
        mmio.write(mmio.stride_reg(slot), 1)
            .expect("register write");
        mmio.write(mmio.length_reg(slot), n)
            .expect("register write");
        mmio.write(mmio.mode_reg(slot), MODE_GO | mode_bits)
            .expect("register write");
    }
    let streams = mmio.launch().expect("slots armed");
    println!(
        "programmed {} streams via MMIO window at {:#x}; FIFO heads at {:#x}..",
        streams.len(),
        0xF000_0000u64,
        mmio.head_reg(0)
    );

    // Hardware side: PI organization, 64-deep FIFOs.
    let device_cfg = DeviceConfig::default();
    let map = SystemMap::single(AddressMap::new(Interleave::Page, &device_cfg).expect("valid map"));
    let mut dev = MemorySystem::single(device_cfg);
    let mut ctl = SmcController::new(
        streams,
        map,
        MsuConfig {
            fifo_depth: 64,
            ..MsuConfig::default()
        },
    );

    // The inner loop: dereference head(x), head(y), write head(y') — an
    // in-order CPU that stalls on an empty head or a full write FIFO.
    let mut now = 0u64;
    let mut i = 0u64;
    let mut x_held: Option<f64> = None;
    let mut y_held: Option<f64> = None;
    while !(i == n && ctl.mem_complete()) {
        ctl.tick(now, &mut dev, &mut mem).expect("fault-free run");
        if i < n {
            if x_held.is_none() {
                x_held = ctl.cpu_read(0, now).map(f64::from_bits);
            }
            if x_held.is_some() && y_held.is_none() {
                y_held = ctl.cpu_read(1, now).map(f64::from_bits);
            }
            if let (Some(x), Some(y)) = (x_held, y_held) {
                if ctl.cpu_write(2, (a * x + y).to_bits(), now) {
                    (x_held, y_held) = (None, None);
                    i += 1;
                }
            }
        }
        now += 1;
    }

    // Verify a few results.
    for i in [0u64, 7, 255, 511] {
        let got = mem.read_f64(y_base + i * 8);
        let expect = a * i as f64 + 0.5 * i as f64;
        assert_eq!(got, expect, "y[{i}]");
    }
    println!(
        "daxpy over {n} elements completed in {now} cycles \
         ({:.1}% of peak bandwidth); results verified.",
        100.0 * (3 * n * 2) as f64 / now as f64
    );
}
