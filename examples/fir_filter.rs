//! A 5-tap FIR filter through the SMC: `y[i] = Σ_k c[k] · x[i+k]`.
//!
//! This is the pattern the paper's `hydro` kernel hints at, taken further:
//! one input vector read through **five offset streams** (one per tap) plus
//! one output stream — six streams total, the upper end of what the
//! benchmark suite exercises. The SMC doesn't care that the read streams
//! overlap in memory; each is just a FIFO with its own base address.
//!
//! ```text
//! cargo run --release --example fir_filter
//! ```

use memsys::{MemorySystem, SystemMap};
use rdram::{AddressMap, DeviceConfig, Interleave, MemoryImage, ELEM_BYTES};
use smc::{MsuConfig, SmcController, StreamDescriptor};

const TAPS: [f64; 5] = [0.1, 0.2, 0.4, 0.2, 0.1];

fn main() {
    let n = 1024u64;
    let x_base = 0u64;
    let y_base = 256 * 1024 + 1024; // different bank under PI

    // Input: a noisy ramp.
    let mut mem = MemoryImage::new();
    for i in 0..n + TAPS.len() as u64 {
        let noise = if i % 3 == 0 { 0.5 } else { -0.25 };
        mem.write_f64(x_base + i * ELEM_BYTES, i as f64 + noise);
    }

    // One read stream per tap, offset by k elements, plus the output.
    let mut streams: Vec<StreamDescriptor> = (0..TAPS.len() as u64)
        .map(|k| StreamDescriptor::read(format!("x+{k}"), x_base + k * ELEM_BYTES, 1, n))
        .collect();
    streams.push(StreamDescriptor::write("y", y_base, 1, n));
    let out_fifo = streams.len() - 1;

    let device_cfg = DeviceConfig::default();
    let map = SystemMap::single(AddressMap::new(Interleave::Page, &device_cfg).expect("valid map"));
    let mut dev = MemorySystem::single(device_cfg);
    let mut ctl = SmcController::new(
        streams,
        map,
        MsuConfig {
            fifo_depth: 64,
            ..MsuConfig::default()
        },
    );

    // In-order CPU: gather the five taps, accumulate, write.
    let mut now = 0u64;
    let mut i = 0u64;
    let mut gathered: Vec<f64> = Vec::with_capacity(TAPS.len());
    let mut acc: Option<f64> = None;
    while !(i == n && ctl.mem_complete()) {
        ctl.tick(now, &mut dev, &mut mem).expect("fault-free run");
        if i < n {
            if acc.is_none() && gathered.len() < TAPS.len() {
                if let Some(bits) = ctl.cpu_read(gathered.len(), now) {
                    gathered.push(f64::from_bits(bits));
                }
            }
            if gathered.len() == TAPS.len() && acc.is_none() {
                acc = Some(gathered.iter().zip(TAPS).map(|(x, c)| c * x).sum::<f64>());
                gathered.clear();
            }
            if let Some(v) = acc {
                if ctl.cpu_write(out_fifo, v.to_bits(), now) {
                    acc = None;
                    i += 1;
                }
            }
        }
        now += 1;
    }

    // Verify against a direct computation.
    for i in [0u64, 1, 500, n - 1] {
        let expect: f64 = TAPS
            .iter()
            .enumerate()
            .map(|(k, c)| c * mem.read_f64(x_base + (i + k as u64) * ELEM_BYTES))
            .sum();
        let got = mem.read_f64(y_base + i * ELEM_BYTES);
        assert!((got - expect).abs() < 1e-12, "y[{i}]: {got} vs {expect}");
    }

    let useful_cycles = (TAPS.len() as u64 + 1) * n * 2;
    println!(
        "5-tap FIR over {n} samples: {now} cycles, {:.1}% of peak bandwidth\n\
         (6 streams: 5 overlapping reads of x at element offsets 0..4, 1 write)\n\
         results verified against direct computation.",
        100.0 * useful_cycles as f64 / now as f64
    );
}
