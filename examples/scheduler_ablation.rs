//! Ablation of the MSU design choices the paper discusses in Section 6:
//!
//! * round-robin (the paper's scheduler) vs. bank-aware FIFO selection
//!   (Hong's thesis refinement), and
//! * speculative precharge/activation of the page a stream is about to
//!   cross into (the paper's proposed improvement for PI systems).
//!
//! Run on page-interleaved memory with *aligned* vectors — the placement
//! that maximizes bank conflicts — to show where the refinements pay off.
//!
//! ```text
//! cargo run --release --example scheduler_ablation
//! ```

use kernels::Kernel;
use sim::report::{pct, Table};
use sim::{run_kernel, Alignment, MemorySystem, SystemConfig};
use smc::Policy;

fn main() {
    let n = 1024;
    let depth = 64;
    let memory = MemorySystem::PageInterleaved;
    println!(
        "PI system, {n}-element vectors, {depth}-deep FIFOs, ALIGNED vector\n\
         bases (maximal bank conflicts). Percent of peak bandwidth:\n"
    );
    let mut table = Table::new(vec![
        "kernel".into(),
        "round-robin %".into(),
        "bank-aware %".into(),
        "rr + speculation %".into(),
        "bank-aware + spec %".into(),
    ]);
    for kernel in Kernel::PAPER_SUITE {
        let base = SystemConfig::smc(memory, depth).with_alignment(Alignment::Aligned);
        let rr = run_kernel(kernel, n, 1, &base.clone()).expect("fault-free run");
        let ba = run_kernel(kernel, n, 1, &base.clone().with_policy(Policy::BankAware))
            .expect("fault-free run");
        let rr_spec =
            run_kernel(kernel, n, 1, &base.clone().with_speculation()).expect("fault-free run");
        let ba_spec = run_kernel(
            kernel,
            n,
            1,
            &base
                .clone()
                .with_policy(Policy::BankAware)
                .with_speculation(),
        )
        .expect("fault-free run");
        table.row(vec![
            kernel.name().into(),
            pct(rr.percent_peak()),
            pct(ba.percent_peak()),
            pct(rr_spec.percent_peak()),
            pct(ba_spec.percent_peak()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The paper: \"A scheduling policy that speculatively precharges a page\n\
         and issues a ROW ACT command before the stream crosses the page\n\
         boundary would mitigate some of these costs.\""
    );
}
