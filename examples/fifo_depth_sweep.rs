//! Sweep the SMC's FIFO depth for one kernel — a single panel of the
//! paper's Figure 7, with the analytic limits alongside the simulation.
//!
//! ```text
//! cargo run --release --example fifo_depth_sweep -- [kernel] [cli|pi] [len]
//! cargo run --release --example fifo_depth_sweep -- vaxpy pi 1024
//! ```

use std::env;

use analytic::smc::Workload;
use kernels::Kernel;
use sim::report::{pct, Table};
use sim::{run_kernel, AccessOrder, Alignment, MemorySystem, SystemConfig};

fn parse_kernel(name: &str) -> Kernel {
    Kernel::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| panic!("unknown kernel {name:?}"))
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let kernel = args.first().map_or(Kernel::Daxpy, |s| parse_kernel(s));
    let memory = match args.get(1).map(String::as_str) {
        Some("pi") => MemorySystem::PageInterleaved,
        _ => MemorySystem::CacheLineInterleaved,
    };
    let n: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1024);

    let sys = SystemConfig::natural_order(memory).stream_system();
    let org = memory.organization();
    let w = Workload::unit(kernel.reads(), kernel.writes(), n);
    let cache_limit = sys.multi_stream(org, kernel.total_streams(), n, 1);

    println!(
        "{kernel} on {} with {n}-element vectors; natural-order cacheline \
         limit = {}% of peak\n",
        memory.label(),
        pct(cache_limit)
    );
    let mut table = Table::new(vec![
        "fifo depth".into(),
        "startup bound %".into(),
        "turnaround bound %".into(),
        "combined %".into(),
        "sim staggered %".into(),
        "sim aligned %".into(),
    ]);
    for depth in [8usize, 16, 32, 64, 128, 256] {
        let mk = |alignment| {
            SystemConfig {
                ordering: AccessOrder::Smc { fifo_depth: depth },
                ..SystemConfig::natural_order(memory)
            }
            .with_alignment(alignment)
        };
        let stag = run_kernel(kernel, n, 1, &mk(Alignment::Staggered)).expect("fault-free run");
        let alig = run_kernel(kernel, n, 1, &mk(Alignment::Aligned)).expect("fault-free run");
        table.row(vec![
            depth.to_string(),
            pct(sys.smc_startup_bound(org, &w, depth as u64)),
            pct(sys.smc_asymptotic_bound(&w, depth as u64)),
            pct(sys.smc_combined_bound(org, &w, depth as u64)),
            pct(stag.percent_peak()),
            pct(alig.percent_peak()),
        ]);
    }
    println!("{}", table.render());
}
