//! Quickstart: how much bandwidth does access order buy?
//!
//! Runs every benchmark kernel of the paper on both memory organizations,
//! once through a conventional natural-order controller and once through the
//! Stream Memory Controller, and prints effective bandwidth side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kernels::Kernel;
use sim::report::{pct, ratio, Table};
use sim::{run_kernel, MemorySystem, SystemConfig};

fn main() {
    let n = 1024;
    let fifo_depth = 128;
    println!(
        "Streams of {n} 64-bit elements on a single Direct RDRAM (peak 1.6 GB/s);\n\
         SMC uses {fifo_depth}-deep FIFOs with round-robin scheduling.\n"
    );
    let mut table = Table::new(vec![
        "kernel".into(),
        "org".into(),
        "natural order %".into(),
        "SMC %".into(),
        "speedup".into(),
    ]);
    for memory in [
        MemorySystem::CacheLineInterleaved,
        MemorySystem::PageInterleaved,
    ] {
        for kernel in Kernel::PAPER_SUITE {
            let naive = run_kernel(kernel, n, 1, &SystemConfig::natural_order(memory))
                .expect("fault-free run");
            let smc = run_kernel(kernel, n, 1, &SystemConfig::smc(memory, fifo_depth))
                .expect("fault-free run");
            table.row(vec![
                kernel.name().into(),
                memory.label().into(),
                pct(naive.percent_peak()),
                pct(smc.percent_peak()),
                ratio(smc.percent_peak() / naive.percent_peak()),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Every simulated run moves real data and is verified bit-exactly\n\
         against the kernel's scalar reference."
    );
}
